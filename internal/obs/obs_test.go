package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	o.DurationHistogram("x").ObserveDuration(time.Second)
	o.Emit(Event{Kind: KindInject})
	o.EmitDetail(Event{Kind: KindRouteDeliver})
	o.BindClock(func() time.Duration { return 0 })
	o.SetTracer(nil)
	if o.Tracing() {
		t.Fatal("nil Obs reports tracing")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil || r.Gauge("x") != nil {
		t.Fatal("nil registry returned non-nil handle")
	}
	var sb strings.Builder
	r.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "disabled") {
		t.Fatalf("nil registry summary = %q", sb.String())
	}
}

// TestHistogramBucketing pins the HDR-style log-linear boundaries:
// values below 16 are exact (one bucket each), and every power-of-two
// range [2^(l-1), 2^l) above that splits into 16 equal sub-buckets, so
// relative bucket width never exceeds 1/16.
func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 33, 1023, 1024} {
		h.Observe(v)
	}
	wantBuckets := map[int]uint64{
		0:   1, // value 0 (exact region)
		1:   1, // value 1
		2:   1, // value 2
		3:   1, // value 3
		4:   1, // value 4
		7:   1, // value 7
		8:   1, // value 8
		15:  1, // value 15
		16:  1, // value 16: first sub-bucket of [16,32)
		31:  1, // value 31: last sub-bucket of [16,32)
		32:  2, // values 32,33: [32,34), first sub-bucket of [32,64)
		111: 1, // value 1023: last sub-bucket of [512,1024)
		112: 1, // value 1024: first sub-bucket of [1024,2048)
	}
	for i, want := range wantBuckets {
		if h.buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.buckets[i], want)
		}
	}
	if h.Count() != 14 {
		t.Fatalf("count = %d, want 14", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1024 {
		t.Fatalf("min/max = %d/%d, want 0/1024", h.Min(), h.Max())
	}
	// Bucket bounds invert the index mapping across the full range.
	for _, v := range []int64{0, 5, 16, 100, 1 << 20, 1<<40 + 12345} {
		lo, hi := histBounds(histIndex(v))
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("value %d outside its bucket bounds [%g,%g)", v, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(100)
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("single-sample p50 = %g, want 100 (clamped to min==max)", got)
	}
	h2 := &Histogram{}
	for i := 0; i < 1000; i++ {
		h2.Observe(int64(i))
	}
	p50 := h2.Quantile(0.50)
	if p50 < 470 || p50 > 530 {
		t.Fatalf("p50 of U[0,1000) = %g, want within ~6%% of 500", p50)
	}
	p99 := h2.Quantile(0.99)
	if p99 < 930 || p99 > 999 {
		t.Fatalf("p99 of U[0,1000) = %g, want within ~6%% of 990", p99)
	}
	if got := h2.Quantile(0); got != 0 {
		t.Fatalf("q=0 should be min, got %g", got)
	}
	if got := h2.Quantile(1); got != 999 {
		t.Fatalf("q=1 should be max, got %g", got)
	}
	// Quantiles are monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h2.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%g gives %g < %g", q, v, prev)
		}
		prev = v
	}
	// Negative values clamp to zero rather than corrupting buckets.
	h3 := &Histogram{}
	h3.Observe(-5)
	if h3.Min() != 0 || h3.Quantile(0.5) != 0 {
		t.Fatal("negative observation did not clamp to 0")
	}
}

func TestHistogramAllZeroSamples(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("all-zero histogram should summarize to zeros")
	}
}

func TestRegistrySummaryOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Inc()
	r.Counter("a_count").Add(2)
	r.DurationHistogram("lat").ObserveDuration(3 * time.Second)
	var sb strings.Builder
	r.WriteSummary(&sb)
	out := sb.String()
	if strings.Index(out, "a_count") > strings.Index(out, "b_count") {
		t.Fatalf("summary not sorted:\n%s", out)
	}
	if !strings.Contains(out, "lat\tcount=1") || !strings.Contains(out, "3s") {
		t.Fatalf("duration histogram not rendered as duration:\n%s", out)
	}
}

func TestObsClockStampsEvents(t *testing.T) {
	o := New()
	sink := NewRingSink(8)
	o.SetTracer(NewTracer(sink))
	now := 5 * time.Minute
	o.BindClock(func() time.Duration { return now })
	o.Emit(Event{Kind: KindInject, Query: "q", EP: 3})
	now = 7 * time.Minute
	o.Emit(Event{Kind: KindPredict, Query: "q", EP: 3})
	o.EmitDetail(Event{Kind: KindRouteDeliver}) // dropped: not verbose
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (detail suppressed)", len(evs))
	}
	if evs[0].T != 5*time.Minute || evs[1].T != 7*time.Minute {
		t.Fatalf("timestamps = %v, %v", evs[0].T, evs[1].T)
	}
	o.Tracer().Verbose = true
	o.EmitDetail(Event{Kind: KindRouteDeliver})
	if got := len(sink.Events()); got != 3 {
		t.Fatalf("verbose detail not recorded, have %d events", got)
	}
}

func TestRingSinkWraps(t *testing.T) {
	s := NewRingSink(3)
	for i := 0; i < 5; i++ {
		s.Record(Event{N: int64(i)})
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, want := range []int64{2, 3, 4} {
		if evs[i].N != want {
			t.Fatalf("evs[%d].N = %d, want %d (oldest first)", i, evs[i].N, want)
		}
	}
}

func TestRegistryMerge(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("msgs").Add(10)
	src.Counter("msgs").Add(5)
	src.Counter("only_src").Inc()
	dst.Gauge("g").Set(1)
	src.Gauge("g").Set(2)
	dst.Histogram("h").Observe(4)
	src.Histogram("h").Observe(1024)
	src.DurationHistogram("lat_ns").ObserveDuration(time.Second)

	dst.Merge(src)
	if got := dst.Counter("msgs").Value(); got != 15 {
		t.Fatalf("merged counter = %d, want 15", got)
	}
	if got := dst.Counter("only_src").Value(); got != 1 {
		t.Fatalf("src-only counter = %d", got)
	}
	if got := dst.Gauge("g").Value(); got != 2 {
		t.Fatalf("merged gauge = %g, want source value 2", got)
	}
	h := dst.Histogram("h")
	if h.Count() != 2 || h.Min() != 4 || h.Max() != 1024 {
		t.Fatalf("merged histogram count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != (4+1024)/2.0 {
		t.Fatalf("merged mean = %g", h.Mean())
	}
	var buf strings.Builder
	dst.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "lat_ns") {
		t.Fatal("duration marking lost in merge")
	}
	// Merging an empty registry (and nil) is a no-op.
	dst.Merge(NewRegistry())
	dst.Merge(nil)
	if dst.Histogram("h").Count() != 2 {
		t.Fatal("empty merge changed state")
	}
}
