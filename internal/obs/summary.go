package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// QuerySummary is the per-query latency breakdown derived from a trace:
// where one query spent its virtual time between injection and its final
// incremental result.
type QuerySummary struct {
	Query    string
	InjectAt time.Duration
	Injector int

	// Dissemination is inject → predictor delivery: the time the
	// divide-and-conquer broadcast plus predictor aggregation took
	// (negative when the trace holds no predict event).
	Dissemination time.Duration
	// Aggregation is inject → first partial result: the initial wave of
	// available endsystems' results merging up the aggregation tree.
	Aggregation time.Duration
	// AvailabilityWait is first partial → last partial: the long tail
	// spent waiting for offline endsystems to come back and contribute.
	AvailabilityWait time.Duration

	// Partials counts incremental result updates; P50/P90/P99 summarize
	// the distribution of their arrival delays since injection.
	Partials      int
	P50, P90, P99 time.Duration

	// MaxContributors is the largest contributor count any partial
	// reported; FinalRows the row count of the last partial.
	MaxContributors int64
	FinalRows       float64

	// Retries and Drops count dissemination reissues and overlay hop-limit
	// drops attributed to this query.
	Retries int
	Drops   int

	// Giveups counts dissemination subranges permanently lost after
	// exhausting reissues; LostRange is the total fraction of the
	// identifier namespace those subranges covered (an upper bound on the
	// fraction of endsystems the query never reached).
	Giveups   int
	LostRange float64

	// Completed reports a complete event: the query reached its predicted
	// completeness (or ran out its lifetime) at the injector.
	Completed bool
	// Cancelled reports an explicit cancel event: the query was abandoned
	// before completing. A query can be both (cancelled after it
	// completed, e.g. a service reclaiming finished-query tree state).
	Cancelled bool
}

// EndState renders how the query ended: "complete", "cancelled",
// "complete+cancelled" (finished, then its state was explicitly
// reclaimed) or "-" when the trace records neither.
func (s QuerySummary) EndState() string {
	switch {
	case s.Completed && s.Cancelled:
		return "complete+cancelled"
	case s.Completed:
		return "complete"
	case s.Cancelled:
		return "cancelled"
	}
	return "-"
}

// SummarizeQueries folds a trace into per-query breakdowns, ordered by
// injection time. Events for queries with no inject event (a trace
// truncated by a ring sink) are summarized from their earliest event.
func SummarizeQueries(events []Event) []QuerySummary {
	type acc struct {
		qs       QuerySummary
		sawInj   bool
		sawPred  bool
		partials []time.Duration
		lastAt   time.Duration
	}
	byQuery := make(map[string]*acc)
	order := []string{}
	get := func(q string) *acc {
		a, ok := byQuery[q]
		if !ok {
			a = &acc{qs: QuerySummary{Query: q, InjectAt: -1, Injector: -1,
				Dissemination: -1, Aggregation: -1}}
			byQuery[q] = a
			order = append(order, q)
		}
		return a
	}
	for _, ev := range events {
		if ev.Query == "" {
			continue
		}
		a := get(ev.Query)
		if !a.sawInj && (a.qs.InjectAt < 0 || ev.T < a.qs.InjectAt) {
			a.qs.InjectAt = ev.T // earliest event stands in until an inject arrives
		}
		switch ev.Kind {
		case KindInject:
			a.sawInj = true
			a.qs.InjectAt = ev.T
			a.qs.Injector = ev.EP
		case KindPredict:
			if !a.sawPred {
				a.sawPred = true
				a.qs.Dissemination = ev.T - a.qs.InjectAt
			}
		case KindPartial:
			a.partials = append(a.partials, ev.T)
			if ev.N > a.qs.MaxContributors {
				a.qs.MaxContributors = ev.N
			}
			a.qs.FinalRows = ev.V
		case KindDissemRetry:
			a.qs.Retries++
		case KindDissemGiveup:
			a.qs.Giveups++
			a.qs.LostRange += ev.V
		case KindRouteDrop:
			a.qs.Drops++
		case KindComplete:
			a.qs.Completed = true
		case KindCancel:
			a.qs.Cancelled = true
		}
		if ev.T > a.lastAt {
			a.lastAt = ev.T
		}
	}

	out := make([]QuerySummary, 0, len(order))
	for _, q := range order {
		a := byQuery[q]
		qs := a.qs
		qs.Partials = len(a.partials)
		if qs.Partials > 0 {
			sort.Slice(a.partials, func(i, j int) bool { return a.partials[i] < a.partials[j] })
			first, last := a.partials[0], a.partials[len(a.partials)-1]
			qs.Aggregation = first - qs.InjectAt
			qs.AvailabilityWait = last - first
			pct := func(p float64) time.Duration {
				return a.partials[nearestRank(p, len(a.partials))] - qs.InjectAt
			}
			qs.P50, qs.P90, qs.P99 = pct(0.50), pct(0.90), pct(0.99)
		}
		out = append(out, qs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InjectAt != out[j].InjectAt {
			return out[i].InjectAt < out[j].InjectAt
		}
		return out[i].Query < out[j].Query
	})
	return out
}

// WriteQueryBreakdown renders the per-query latency breakdown table plus,
// when several queries are present, cross-query phase percentiles.
func WriteQueryBreakdown(w io.Writer, sums []QuerySummary) {
	fmt.Fprintf(w, "# query lifecycle breakdown (%d queries)\n", len(sums))
	fmt.Fprintln(w, "# phase legend: dissem = inject→predictor; agg = inject→first result;")
	fmt.Fprintln(w, "#               avail_wait = first→last result (offline-endsystem tail)")
	fmt.Fprintln(w, "# query\tinject_at\tdissem\tagg\tavail_wait\tpartials\tp50\tp90\tp99\tcontributors\tretries\tdrops\tgiveups\tend")
	for _, s := range sums {
		fmt.Fprintf(w, "%s\t%v\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			s.Query, s.InjectAt,
			fmtPhase(s.Dissemination), fmtPhase(s.Aggregation), fmtPhase(s.AvailabilityWait),
			s.Partials, fmtPhase(s.P50), fmtPhase(s.P90), fmtPhase(s.P99),
			s.MaxContributors, s.Retries, s.Drops, s.Giveups, s.EndState())
	}
	if len(sums) > 1 {
		fmt.Fprintln(w, "# cross-query phase percentiles")
		fmt.Fprintln(w, "# phase\tp50\tp90\tp99")
		writePhaseRow(w, "dissemination", sums, func(s QuerySummary) time.Duration { return s.Dissemination })
		writePhaseRow(w, "aggregation", sums, func(s QuerySummary) time.Duration { return s.Aggregation })
		writePhaseRow(w, "avail_wait", sums, func(s QuerySummary) time.Duration { return s.AvailabilityWait })
	}
}

func writePhaseRow(w io.Writer, name string, sums []QuerySummary, get func(QuerySummary) time.Duration) {
	var ds []time.Duration
	for _, s := range sums {
		if d := get(s); d >= 0 {
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		fmt.Fprintf(w, "%s\t-\t-\t-\n", name)
		return
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) time.Duration { return ds[nearestRank(p, len(ds))] }
	fmt.Fprintf(w, "%s\t%v\t%v\t%v\n", name, pct(0.50), pct(0.90), pct(0.99))
}

// nearestRank returns the nearest-rank index of the p-quantile in a
// sorted sample of size n (so the p99 of a tiny sample is its maximum).
func nearestRank(p float64, n int) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// fmtPhase renders a phase duration, with "-" for absent (negative)
// phases.
func fmtPhase(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	switch {
	case d >= time.Hour:
		return d.Round(time.Minute).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
