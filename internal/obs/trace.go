package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind labels a trace event with the lifecycle stage or protocol action it
// records. The query lifecycle proper is inject → disseminate → predict →
// partial → complete; the remaining kinds expose what the overlay and the
// maintenance protocols were doing underneath.
type Kind string

const (
	// KindQueued marks a query admitted by the query service and placed in
	// the scheduling queue. The query id does not exist yet (it is derived
	// from the injection time), so Query is empty and N carries the
	// service's arrival sequence number; span links connect the queued
	// event to the later inject.
	KindQueued Kind = "queued"
	// KindShed marks a query rejected by admission control. N is the
	// arrival sequence number. Shed queries never inject, so this is a
	// terminal event.
	KindShed Kind = "shed"
	// KindStarted marks a queued query leaving the queue and starting
	// injection. N is the arrival sequence number.
	KindStarted Kind = "started"
	// KindInject marks a query's submission at its injector endsystem.
	KindInject Kind = "inject"
	// KindDisseminate marks one dissemination range task starting at an
	// endsystem (the divide-and-conquer broadcast of §3.3).
	KindDisseminate Kind = "disseminate"
	// KindDissemRetry marks a reissued subrange request after a response
	// timeout.
	KindDissemRetry Kind = "dissem_retry"
	// KindDissemAbandon marks a subrange given up on after MaxRetries; its
	// contribution is missing from the predictor.
	KindDissemAbandon Kind = "dissem_abandon"
	// KindDissemGiveup marks the permanent loss of a dissemination
	// subrange: reissues are exhausted and no endsystem will execute the
	// query on the subrange's behalf. N is the number of reissues spent, V
	// the fraction of the identifier namespace the lost subrange covered.
	KindDissemGiveup Kind = "dissem_giveup"
	// KindOnBehalf marks a predictor contribution generated on behalf of an
	// unavailable endsystem from replicated metadata. N is the count of
	// subjects covered by one leaf task.
	KindOnBehalf Kind = "onbehalf"
	// KindPredict marks the aggregated completeness predictor reaching the
	// injector. V is the predictor's expected total row count.
	KindPredict Kind = "predict"
	// KindExec marks an endsystem executing the query against its local
	// tables after observing it through dissemination. N is the local row
	// count scanned.
	KindExec Kind = "exec"
	// KindAvailExec marks an endsystem executing a query it learned about
	// from a neighbor's query-list push after rejoining the overlay — the
	// availability-wait path: the edge from its parent span measures how
	// long the query waited for this endsystem to come back.
	KindAvailExec Kind = "avail_exec"
	// KindSubmit marks an endsystem submitting its local result into the
	// aggregation tree. N is the contribution version.
	KindSubmit Kind = "submit"
	// KindAggResubmit marks an unacknowledged aggregation-tree submission
	// being resent after a timeout. N is the resend attempt.
	KindAggResubmit Kind = "agg_resubmit"
	// KindPartial marks an incremental result update reaching the
	// injector. N is the number of contributing endsystems, V the
	// aggregated row count.
	KindPartial Kind = "partial"
	// KindComplete marks a query reaching its predicted completeness at
	// the injector: the handle's result stream hit the predictor's
	// expected total (N is the number of result updates delivered).
	KindComplete Kind = "complete"
	// KindCancel marks explicit query cancellation at the injector. N is
	// the number of result updates delivered before the cancel. Distinct
	// from KindComplete so trace summaries and invariant checkers can tell
	// an abandoned query from a finished one.
	KindCancel Kind = "cancel"

	// KindRouteDeliver marks an overlay delivery; N is the hop count
	// (verbose traces only).
	KindRouteDeliver Kind = "route_deliver"
	// KindRouteRetry marks a stale-routing-entry timeout and reroute
	// (verbose traces only).
	KindRouteRetry Kind = "route_retry"
	// KindRouteDrop marks a message dropped because it exceeded the
	// overlay's hop budget — previously an invisible failure.
	KindRouteDrop Kind = "route_drop"
	// KindLeafsetRepair marks a leafset repair after a member death.
	KindLeafsetRepair Kind = "leafset_repair"
	// KindJoin marks an overlay join completing. N is the number of join
	// attempts it took.
	KindJoin Kind = "join"
	// KindTakeover marks an aggregation-tree vertex primary takeover after
	// churn.
	KindTakeover Kind = "takeover"
	// KindHedgeIssued marks an interior aggregation vertex issuing a
	// duplicate pull to a replica of a child that exceeded its predicted
	// response quantile. N is the number of hedges issued so far for this
	// vertex, V the deadline (in seconds) the child overran.
	KindHedgeIssued Kind = "hedge_issued"
	// KindHedgeWon marks a hedged pull's answer arriving before (or
	// instead of) the awaited child's own forward and advancing the
	// vertex's aggregate — the answer that lost the race is deduplicated
	// by the versioned child table and never produces this event.
	KindHedgeWon Kind = "hedge_won"
	// KindMetaPush marks a metadata replication push (verbose traces
	// only). N is the replica-set fan-out.
	KindMetaPush Kind = "meta_push"
	// KindMetaRereplicate marks churn-induced re-replication of stored
	// records to a new replica-set member (verbose traces only). N is the
	// number of records forwarded.
	KindMetaRereplicate Kind = "meta_rerepl"

	// Fault-injection kinds (internal/fault). Every scheduled injection
	// emits its activation kind when it fires and KindFaultHeal when it
	// heals; N is the injection's index in the scenario so activations and
	// heals can be paired.
	//
	// KindFaultPartition marks a region partition activating. V is the
	// region index cut off.
	KindFaultPartition Kind = "fault_partition"
	// KindFaultBurst marks a Gilbert-Elliott burst-loss window opening.
	KindFaultBurst Kind = "fault_burst"
	// KindFaultJitter marks a latency-jitter window opening.
	KindFaultJitter Kind = "fault_jitter"
	// KindFaultSpike marks a transient delay spike starting. V is the extra
	// delay in seconds.
	KindFaultSpike Kind = "fault_spike"
	// KindFaultDup marks a message-duplication window opening. V is the
	// duplication probability.
	KindFaultDup Kind = "fault_dup"
	// KindFaultStraggle marks a per-region straggler window opening: every
	// message into or out of the region picks up a fixed extra delay. V is
	// the region index slowed down.
	KindFaultStraggle Kind = "fault_straggle"
	// KindFaultCrash marks one endsystem of a correlated crash cohort going
	// down. EP is the crashed endsystem, V the region index.
	KindFaultCrash Kind = "fault_crash"
	// KindFaultRestart marks one endsystem of a crash cohort coming back.
	KindFaultRestart Kind = "fault_restart"
	// KindFaultHeal marks an injection's fault window closing.
	KindFaultHeal Kind = "fault_heal"
)

// Event is one typed span event. T is virtual time since the start of the
// simulation run. Query is the short hex queryId for query-scoped events
// ("" otherwise). EP is the endpoint at which the event happened (-1 when
// no single endpoint applies). N and V carry the kind-specific count and
// value documented on each Kind.
//
// Span and Parent link events into a causal tree: Span is this event's
// unique id within the trace (allocated by Obs.EmitSpan, 0 when the event
// carries no span) and Parent is the span of the event that causally
// preceded it — the message send it answers, the timer that armed it, the
// phase it continues. Walking Parent links from a terminal event back to
// the root reconstructs the query's critical path; internal/obs/causal
// turns that walk into a per-phase delay decomposition.
type Event struct {
	T      time.Duration `json:"t"`
	Kind   Kind          `json:"kind"`
	Query  string        `json:"query,omitempty"`
	EP     int           `json:"ep"`
	N      int64         `json:"n,omitempty"`
	V      float64       `json:"v,omitempty"`
	Span   uint64        `json:"span,omitempty"`
	Parent uint64        `json:"parent,omitempty"`
}

// Sink receives recorded events.
type Sink interface {
	Record(Event)
}

// Tracer forwards events to a sink. Verbose additionally records the
// high-frequency kinds (per-hop routing, periodic maintenance pushes).
type Tracer struct {
	Verbose bool
	sink    Sink
}

// NewTracer returns a tracer writing to sink.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Record forwards one event to the sink.
func (t *Tracer) Record(ev Event) {
	if t != nil && t.sink != nil {
		t.sink.Record(ev)
	}
}

// RingSink retains the last capacity events in memory.
type RingSink struct {
	buf  []Event
	next int
	full bool
}

// NewRingSink returns a ring retaining capacity events (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Record implements Sink.
func (r *RingSink) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONLSink streams events as JSON lines to a writer.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing one JSON object per line to w.
// Call Flush when the run finishes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Record implements Sink.
func (s *JSONLSink) Record(ev Event) {
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
}

// Flush drains buffered output and returns the first write error, if any.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
