// Package model implements the closed-form analytical models of Section
// 4.2 of the paper: background maintenance overhead, in bytes per second
// transferred systemwide, for four query-infrastructure architectures —
// Centralized (equation 1), Seaweed (2), DHT-replicated (3) and PIER (4) —
// plus PIER's tuple-availability decay (Table 2). The models regenerate
// Figures 3 and 4 by sweeping one parameter at a time with the rest held
// at the Table 1 defaults.
package model

import "math"

// Params are the model parameters of Table 1.
type Params struct {
	N    float64 // number of endsystems
	FOn  float64 // fraction of available endsystems (f_on)
	C    float64 // churn rate per endsystem per second
	U    float64 // data update rate per endsystem, bytes/s
	D    float64 // database size per endsystem, bytes
	K    float64 // replicas stored (metadata for Seaweed, data for DHT)
	H    float64 // data summary size, bytes
	A    float64 // availability model size, bytes
	P    float64 // summary push rate, 1/s
	R    float64 // PIER data refresh rate, 1/s
	RAlt float64 // PIER's slower alternative refresh rate, 1/s
}

// PaperDefaults returns the Table 1 values: 300,000 endsystems on the
// Microsoft corporate network, Farsite availability (f_on=0.81, churn
// 6.9e-6/s), Anemone data rates (u=970 B/s, d=2.6 GB), k=4 replicas,
// h=6,473 B summaries, a=48 B availability models, and PIER refresh
// periods of 5 minutes and 1 hour.
//
// One reconciliation: Table 1 prints the summary push rate as 0.033 s^-1
// ("30 s period"), but that value contradicts the paper's own Figure 3 and
// its headline claim that Seaweed beats the centralized design by a factor
// of ten at u=970 B/s — with p=1/30 the push term alone (f_on·N·k·p·h ≈
// 2.1e8 B/s) nearly equals the centralized overhead. The curves and the
// stated ratio are consistent with p = 1/300 s^-1 (a 5-minute period,
// matching the PIER refresh rate printed on the adjacent row, and of the
// same order as the 17.5-minute period the paper's simulations use), so
// that is the default here; EXPERIMENTS.md records the discrepancy.
func PaperDefaults() Params {
	return Params{
		N:    300_000,
		FOn:  0.81,
		C:    6.9e-6,
		U:    970,
		D:    2.6e9,
		K:    4,
		H:    6473,
		A:    48,
		P:    1.0 / 300,
		R:    1.0 / 300,
		RAlt: 1.0 / 3600,
	}
}

// SmallDataDefaults returns the Figure 4 variant: 100 MB per endsystem and
// 10 bytes/s update rate, all else per Table 1.
func SmallDataDefaults() Params {
	p := PaperDefaults()
	p.D = 100e6
	p.U = 10
	return p
}

// Design identifies one of the modeled architectures.
type Design int

const (
	// Centralized backhauls all generated data to a single repository
	// (equation 1): f_on·N·u.
	Centralized Design = iota
	// Seaweed replicates only metadata (equation 2):
	// f_on·N·k·p·h + (1/f_on)·N·c·k·(h+a).
	Seaweed
	// DHTReplicated stores each tuple k-way in a DHT (equation 3):
	// f_on·N·k·u + (1/f_on)·N·c·k·d.
	DHTReplicated
	// PIER periodically re-inserts every endsystem's data (equation 4):
	// f_on·N·d·r, at the aggressive 5-minute refresh.
	PIER
	// PIERSlow is PIER with the 1-hour refresh period.
	PIERSlow

	// NumDesigns counts the modeled designs.
	NumDesigns
)

// String returns the design's display name as used in the figures.
func (d Design) String() string {
	switch d {
	case Centralized:
		return "Centralized"
	case Seaweed:
		return "Seaweed"
	case DHTReplicated:
		return "DHT-replicated"
	case PIER:
		return "PIER (5 min)"
	case PIERSlow:
		return "PIER (1 hour)"
	default:
		return "unknown"
	}
}

// MaintenanceOverhead returns the design's total background maintenance
// bandwidth in bytes per second transferred systemwide.
func MaintenanceOverhead(d Design, p Params) float64 {
	switch d {
	case Centralized:
		return p.FOn * p.N * p.U
	case Seaweed:
		return p.FOn*p.N*p.K*p.P*p.H + (1/p.FOn)*p.N*p.C*p.K*(p.H+p.A)
	case DHTReplicated:
		return p.FOn*p.N*p.K*p.U + (1/p.FOn)*p.N*p.C*p.K*p.D
	case PIER:
		return p.FOn * p.N * p.D * p.R
	case PIERSlow:
		return p.FOn * p.N * p.D * p.RAlt
	default:
		return math.NaN()
	}
}

// AllDesigns lists the designs in the order the figures plot them.
func AllDesigns() []Design {
	return []Design{Centralized, Seaweed, DHTReplicated, PIER, PIERSlow}
}

// PIERAvailability returns the expected fraction of a source's tuples
// still available in PIER a time t (seconds) after the source's last
// refresh, given churn rate c: e^(−c·t) (§4.2.4).
func PIERAvailability(c, tSeconds float64) float64 {
	return math.Exp(-c * tSeconds)
}

// Sweep evaluates every design over a swept parameter. set mutates a copy
// of base for each sweep value. It returns overhead[designIndex][pointIndex].
func Sweep(base Params, values []float64, set func(*Params, float64)) [][]float64 {
	designs := AllDesigns()
	out := make([][]float64, len(designs))
	for i := range out {
		out[i] = make([]float64, len(values))
	}
	for j, v := range values {
		p := base
		set(&p, v)
		for i, d := range designs {
			out[i][j] = MaintenanceOverhead(d, p)
		}
	}
	return out
}

// LogSpace returns n logarithmically spaced values from lo to hi
// inclusive.
func LogSpace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// Crossover finds, by bisection over u in [lo, hi], the update rate at
// which two designs' overheads are equal with all other parameters from
// base. It returns NaN when there is no sign change on the interval. The
// paper's Figure 3(b) narrative hinges on such crossovers (e.g.
// DHT-replication overtaking PIER at high update rates, and Seaweed
// beating Centralized beyond a modest u).
func Crossover(a, b Design, base Params, lo, hi float64, set func(*Params, float64)) float64 {
	diff := func(v float64) float64 {
		p := base
		set(&p, v)
		return MaintenanceOverhead(a, p) - MaintenanceOverhead(b, p)
	}
	dlo, dhi := diff(lo), diff(hi)
	if dlo == 0 {
		return lo
	}
	if dhi == 0 {
		return hi
	}
	if (dlo < 0) == (dhi < 0) {
		return math.NaN()
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // bisect in log space
		dm := diff(mid)
		if dm == 0 {
			return mid
		}
		if (dm < 0) == (dlo < 0) {
			lo, dlo = mid, dm
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
