package model

import (
	"math"
	"testing"
)

// The paper's headline analytic claims, asserted as tests.

func TestPaperDefaultsOrdering(t *testing.T) {
	p := PaperDefaults()
	sw := MaintenanceOverhead(Seaweed, p)
	cent := MaintenanceOverhead(Centralized, p)
	dht := MaintenanceOverhead(DHTReplicated, p)
	pier := MaintenanceOverhead(PIER, p)
	pierSlow := MaintenanceOverhead(PIERSlow, p)

	// "Seaweed already outperforms the centralized solution by a factor
	// of 10" at the Anemone update rate.
	if ratio := cent / sw; ratio < 5 || ratio > 30 {
		t.Errorf("centralized/seaweed = %.1f, paper says ≈10", ratio)
	}
	// "1000 or more times lower than the other distributed solutions".
	if dht/sw < 1000 {
		t.Errorf("dht/seaweed = %.0f, want ≥1000", dht/sw)
	}
	if pier/sw < 1000 {
		t.Errorf("pier/seaweed = %.0f, want ≥1000", pier/sw)
	}
	// PIER with 1-hour refresh is 12x cheaper than 5-minute refresh but
	// still enormous.
	if math.Abs(pierSlow*12-pier) > pier*1e-9 {
		t.Errorf("PIER refresh scaling wrong: %v vs %v", pier, pierSlow)
	}
	if pierSlow < dht/100 {
		t.Errorf("PIER (1h) should remain within two orders of DHT at defaults")
	}
}

func TestSeaweedFormulaComponents(t *testing.T) {
	p := PaperDefaults()
	push := p.FOn * p.N * p.K * p.P * p.H
	churn := (1 / p.FOn) * p.N * p.C * p.K * (p.H + p.A)
	if got := MaintenanceOverhead(Seaweed, p); math.Abs(got-(push+churn)) > 1e-6 {
		t.Fatalf("Seaweed formula mismatch: %v vs %v", got, push+churn)
	}
	// At Farsite churn, the periodic push dominates the churn term.
	if push < churn {
		t.Errorf("push term (%.0f) should dominate churn term (%.0f) at low churn", push, churn)
	}
}

func TestLinearScalingInN(t *testing.T) {
	p := PaperDefaults()
	for _, d := range AllDesigns() {
		at1 := MaintenanceOverhead(d, p)
		p2 := p
		p2.N = p.N * 10
		at10 := MaintenanceOverhead(d, p2)
		if math.Abs(at10/at1-10) > 1e-9 {
			t.Errorf("%v: overhead not linear in N (%v)", d, at10/at1)
		}
	}
}

func TestParameterIndependence(t *testing.T) {
	p := PaperDefaults()
	// Seaweed and PIER are independent of u.
	for _, d := range []Design{Seaweed, PIER, PIERSlow} {
		p2 := p
		p2.U *= 1000
		if MaintenanceOverhead(d, p2) != MaintenanceOverhead(d, p) {
			t.Errorf("%v must be independent of u", d)
		}
	}
	// Centralized and Seaweed are independent of d.
	for _, d := range []Design{Centralized, Seaweed} {
		p2 := p
		p2.D *= 1000
		if MaintenanceOverhead(d, p2) != MaintenanceOverhead(d, p) {
			t.Errorf("%v must be independent of d", d)
		}
	}
	// Centralized and PIER are independent of churn.
	for _, d := range []Design{Centralized, PIER, PIERSlow} {
		p2 := p
		p2.C *= 1000
		if MaintenanceOverhead(d, p2) != MaintenanceOverhead(d, p) {
			t.Errorf("%v must be independent of c", d)
		}
	}
}

func TestCentralizedBeatsSeaweedAtLowUpdateRates(t *testing.T) {
	// "When the update rate u is low, the centralized approach will
	// require lower overhead than Seaweed" (and Figure 4's narrative).
	p := SmallDataDefaults() // u = 10 B/s
	if MaintenanceOverhead(Centralized, p) >= MaintenanceOverhead(Seaweed, p) {
		t.Error("centralized should win at u=10 B/s")
	}
	// And the crossover lies at a modest update rate below Anemone's 970.
	x := Crossover(Centralized, Seaweed, p, 0.1, 1e6, func(q *Params, v float64) { q.U = v })
	if math.IsNaN(x) || x < 1 || x > 970 {
		t.Errorf("centralized/seaweed crossover at u=%.1f, want between 1 and 970", x)
	}
}

func TestDHTOvertakesPIERAtHighUpdateRates(t *testing.T) {
	// Figure 3(b): "DHT-replication outperforms PIER by two orders of
	// magnitude at low update rates but approaches and then exceeds the
	// overhead of PIER at high update rates."
	p := PaperDefaults()
	lowU := p
	lowU.U = 1
	if r := MaintenanceOverhead(PIER, lowU) / MaintenanceOverhead(DHTReplicated, lowU); r < 50 {
		t.Errorf("at low u PIER/DHT = %.0f, want ≥50", r)
	}
	x := Crossover(DHTReplicated, PIER, p, 1, 1e9, func(q *Params, v float64) { q.U = v })
	if math.IsNaN(x) {
		t.Error("no DHT/PIER crossover found in u sweep")
	}
}

func TestPIERAvailabilityTable2(t *testing.T) {
	// Table 2 of the paper. The churn rates are derived from the
	// published cells themselves (e^{-ct}): Farsite c≈5.5e-6, Gnutella
	// c≈9.3e-5.
	const cFarsite, cGnutella = 5.5e-6, 9.3e-5
	cases := []struct {
		c, t, want, tol float64
	}{
		{cFarsite, 300, 0.998, 0.002},
		{cFarsite, 3600, 0.980, 0.005},
		{cFarsite, 43200, 0.789, 0.02},
		{cGnutella, 300, 0.973, 0.005},
		{cGnutella, 3600, 0.716, 0.02},
		{cGnutella, 43200, 0.018, 0.01},
	}
	for _, cse := range cases {
		got := PIERAvailability(cse.c, cse.t)
		if math.Abs(got-cse.want) > cse.tol {
			t.Errorf("availability(c=%g, t=%g) = %.3f, want %.3f±%.3f",
				cse.c, cse.t, got, cse.want, cse.tol)
		}
	}
}

func TestSweepShape(t *testing.T) {
	p := PaperDefaults()
	values := LogSpace(1e3, 1e9, 13)
	out := Sweep(p, values, func(q *Params, v float64) { q.N = v })
	if len(out) != len(AllDesigns()) {
		t.Fatalf("sweep rows = %d", len(out))
	}
	for i, row := range out {
		if len(row) != len(values) {
			t.Fatalf("row %d has %d points", i, len(row))
		}
		for j := 1; j < len(row); j++ {
			if row[j] <= row[j-1] {
				t.Fatalf("%v not increasing in N", AllDesigns()[i])
			}
		}
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(v[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace = %v", v)
		}
	}
	if got := LogSpace(5, 100, 1); len(got) != 1 || got[0] != 5 {
		t.Fatal("n=1 should return lo")
	}
}

func TestCrossoverNoSignChange(t *testing.T) {
	p := PaperDefaults()
	// Seaweed vs PIER never cross in a u sweep (both u-independent).
	x := Crossover(Seaweed, PIER, p, 1, 1e6, func(q *Params, v float64) { q.U = v })
	if !math.IsNaN(x) {
		t.Errorf("expected NaN for non-crossing designs, got %v", x)
	}
}
