package predictor

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/avail"
)

func TestBoundariesSpanSecondsToDays(t *testing.T) {
	if Boundary(0) != time.Second {
		t.Fatalf("first boundary = %v", Boundary(0))
	}
	last := Boundary(NumBuckets - 1)
	if last < 48*time.Hour || last > 100*time.Hour {
		t.Fatalf("last boundary = %v, want ~72h (covers the paper's multi-day waits)", last)
	}
	for i := 1; i < NumBuckets; i++ {
		if Boundary(i) <= Boundary(i-1) {
			t.Fatal("boundaries not increasing")
		}
	}
}

func TestAddImmediateAndRowsBy(t *testing.T) {
	p := &Predictor{}
	p.AddImmediate(100)
	p.AddAtDelay(30*time.Second, 50)
	p.AddAtDelay(10*time.Hour, 25)

	if got := p.RowsBy(0); got != 100 {
		t.Errorf("RowsBy(0) = %v, want 100", got)
	}
	if got := p.RowsBy(time.Minute); got != 150 {
		t.Errorf("RowsBy(1m) = %v, want 150", got)
	}
	if got := p.RowsBy(48 * time.Hour); got != 175 {
		t.Errorf("RowsBy(48h) = %v, want 175", got)
	}
	if got := p.ExpectedTotal(); got != 175 {
		t.Errorf("total = %v", got)
	}
}

func TestAddAtDelayEdges(t *testing.T) {
	p := &Predictor{}
	p.AddAtDelay(0, 10) // zero delay = immediate
	if p.Immediate != 10 {
		t.Error("zero delay must be immediate")
	}
	p.AddAtDelay(365*24*time.Hour, 5) // beyond last boundary
	if p.Later != 5 {
		t.Error("beyond-horizon rows must land in Later")
	}
}

func TestCompletenessMonotone(t *testing.T) {
	f := func(imm uint16, delays []uint32, weights []uint16) bool {
		p := &Predictor{}
		p.AddImmediate(float64(imm))
		for i := range delays {
			w := 1.0
			if i < len(weights) {
				w = float64(weights[i]%1000) + 1
			}
			p.AddAtDelay(time.Duration(delays[i]%(200*3600))*time.Second, w)
		}
		prev := -1.0
		for d := time.Duration(0); d < 80*time.Hour; d += 37 * time.Minute {
			c := p.CompletenessBy(d)
			if c < prev-1e-9 || c < 0 || c > 1+1e-9 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEqualsCombined(t *testing.T) {
	a := &Predictor{}
	b := &Predictor{}
	all := &Predictor{}
	add := func(p *Predictor, d time.Duration, rows float64) {
		p.AddAtDelay(d, rows)
		all.AddAtDelay(d, rows)
	}
	add(a, 0, 10)
	add(a, time.Minute, 20)
	add(b, time.Hour, 30)
	add(b, 100*time.Hour, 40)
	a.Merge(b)
	for d := time.Duration(0); d < 80*time.Hour; d += time.Hour {
		if math.Abs(a.RowsBy(d)-all.RowsBy(d)) > 1e-9 {
			t.Fatalf("merge mismatch at %v", d)
		}
	}
	if a.Later != all.Later {
		t.Fatal("Later mismatch after merge")
	}
}

func TestAddModelPeriodicMachine(t *testing.T) {
	// A machine that comes up every morning between 8 and 9. It went down
	// at 18:00; the query arrives at midnight. Its rows should be
	// predicted to arrive in ~8-9 hours.
	m := &avail.Model{}
	for i := 0; i < 20; i++ {
		m.ObserveUpEvent(time.Duration(i)*avail.Day+8*time.Hour+30*time.Minute, 14*time.Hour)
	}
	p := &Predictor{}
	now := 10 * avail.Day // midnight
	p.AddModel(m, now, now-6*time.Hour, 1000)

	if got := p.RowsBy(4 * time.Hour); got > 100 {
		t.Errorf("rows by 4h = %v, want ≈0 (machine comes up at ~8:30)", got)
	}
	if got := p.RowsBy(12 * time.Hour); got < 900 {
		t.Errorf("rows by 12h = %v, want ≈1000", got)
	}
	total := p.ExpectedTotal()
	if math.Abs(total-1000) > 1 {
		t.Errorf("total = %v, want 1000 (mass conservation)", total)
	}
}

func TestAddModelMassConservation(t *testing.T) {
	m := &avail.Model{} // no observations: uninformed prior
	p := &Predictor{}
	p.AddModel(m, 0, 0, 500)
	if math.Abs(p.ExpectedTotal()-500) > 1e-6 {
		t.Fatalf("total = %v, want 500", p.ExpectedTotal())
	}
	if p.Later <= 0 {
		t.Error("an uninformed prior should leave some mass beyond the horizon")
	}
	p.AddModel(m, 0, 0, 0) // zero rows: no-op
	if math.Abs(p.ExpectedTotal()-500) > 1e-6 {
		t.Error("zero-row AddModel must not change the predictor")
	}
}

func TestDelayFor(t *testing.T) {
	p := &Predictor{}
	p.AddImmediate(80)
	p.AddAtDelay(30*time.Minute, 19)
	p.AddAtDelay(1000*time.Hour, 1) // never within horizon

	if d, ok := p.DelayFor(0.5); !ok || d != 0 {
		t.Errorf("DelayFor(0.5) = %v %v, want 0 (80%% immediate)", d, ok)
	}
	d, ok := p.DelayFor(0.99)
	if !ok || d < 30*time.Minute || d > time.Hour {
		t.Errorf("DelayFor(0.99) = %v %v, want ≈30m boundary", d, ok)
	}
	if _, ok := p.DelayFor(1.0); ok {
		t.Error("DelayFor(1.0) should be unreachable (1 row in Later)")
	}
}

func TestEmptyPredictor(t *testing.T) {
	p := &Predictor{}
	if p.CompletenessBy(time.Hour) != 1 {
		t.Error("empty predictor completeness must be 1")
	}
	if d, ok := p.DelayFor(0.9); !ok || d != 0 {
		t.Error("empty predictor reaches any completeness at 0")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Predictor{}
	p.AddImmediate(123.5)
	p.AddAtDelay(90*time.Second, 7)
	p.AddAtDelay(900*time.Hour, 2)
	enc := p.Encode(nil)
	if len(enc) != EncodedSize {
		t.Fatalf("encoded size %d, want %d", len(enc), EncodedSize)
	}
	got, rest, err := Decode(enc)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatal("round trip mismatch")
	}
	if _, _, err := Decode(enc[:10]); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestRowsByInterpolatesWithinBucket(t *testing.T) {
	p := &Predictor{}
	// All mass in the bucket ending at Boundary(10).
	lo := Boundary(9)
	hi := Boundary(10)
	p.Buckets[10] = 100
	mid := lo + (hi-lo)/2
	got := p.RowsBy(mid)
	if got < 40 || got > 60 {
		t.Errorf("interpolated rows at bucket midpoint = %v, want ≈50", got)
	}
	if p.RowsBy(lo) != 0 {
		t.Errorf("rows at bucket lower edge = %v, want 0", p.RowsBy(lo))
	}
	if p.RowsBy(hi) != 100 {
		t.Errorf("rows at bucket upper edge = %v, want 100", p.RowsBy(hi))
	}
}
