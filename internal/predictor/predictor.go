// Package predictor implements Seaweed's completeness predictors: cumulative
// distributions of expected row count against predicted time of
// availability. A predictor answers "how many of the rows relevant to this
// query will have been processed by time t?" — the paper's example: 80% of
// rows immediately, 99% within an hour, 100% only after several days.
//
// Time is bucketed on a log scale (half-power-of-two boundaries from one
// second to about three days) "to accommodate wide variations in
// availability ranging from seconds to days". Because the bucket layout is
// fixed, predictors are constant-size and merge by pointwise addition; the
// query distribution tree aggregates them at each step without growth, as
// §3.3 requires.
package predictor

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/avail"
)

// NumBuckets is the number of delay buckets. Bucket i covers delays in
// (Boundary(i-1), Boundary(i)]; bucket 0 covers (0, 1s].
const NumBuckets = 72

// Boundary returns the upper delay boundary of bucket i: 2^(i/4) seconds,
// i.e. boundaries advance by a factor of 2^(1/4) from one second to about
// three days. The log scale is the paper's ("time is on a log scale to
// accommodate wide variations in availability ranging from seconds to
// days"); the quarter-power spacing keeps interpolation error small in the
// steep morning ramp while the predictor stays constant-size.
func Boundary(i int) time.Duration {
	return time.Duration(float64(time.Second) * math.Pow(2, float64(i)/4))
}

// Predictor is a completeness predictor. Immediate holds rows on currently
// available endsystems; Buckets[i] holds expected rows becoming available
// within bucket i's delay window; Later holds expected rows beyond the last
// boundary. The zero Predictor is empty and is the identity of Merge.
type Predictor struct {
	Immediate float64
	Buckets   [NumBuckets]float64
	Later     float64
}

// AddImmediate adds rows that are available now (the endsystem is online).
func (p *Predictor) AddImmediate(rows float64) { p.Immediate += rows }

// AddAtDelay adds rows expected to become available at exactly the given
// delay from now (used when the availability time is known rather than
// probabilistic).
func (p *Predictor) AddAtDelay(delay time.Duration, rows float64) {
	if delay <= 0 {
		p.Immediate += rows
		return
	}
	for i := 0; i < NumBuckets; i++ {
		if delay <= Boundary(i) {
			p.Buckets[i] += rows
			return
		}
	}
	p.Later += rows
}

// AddModel distributes an unavailable endsystem's estimated rows across the
// delay buckets according to its availability model: the mass in bucket i
// is rows × (P(up by boundary i) − P(up by boundary i−1)). Mass the model
// does not expect within the last boundary lands in Later.
func (p *Predictor) AddModel(m *avail.Model, now, downSince time.Duration, rows float64) {
	p.AddModelMode(avail.ModeAuto, m, now, downSince, rows)
}

// AddModelMode is AddModel under a forced availability-prediction mode
// (for the classifier ablation).
func (p *Predictor) AddModelMode(mode avail.PredictionMode, m *avail.Model, now, downSince time.Duration, rows float64) {
	if rows <= 0 {
		return
	}
	prev := 0.0
	for i := 0; i < NumBuckets; i++ {
		cum := m.ProbUpByMode(mode, now, downSince, now+Boundary(i))
		if cum > 1 {
			cum = 1
		}
		if cum > prev {
			p.Buckets[i] += rows * (cum - prev)
			prev = cum
		}
	}
	if prev < 1 {
		p.Later += rows * (1 - prev)
	}
}

// Merge adds another predictor into this one. Merging is commutative and
// associative; aggregation trees rely on this.
func (p *Predictor) Merge(q *Predictor) {
	p.Immediate += q.Immediate
	for i := range p.Buckets {
		p.Buckets[i] += q.Buckets[i]
	}
	p.Later += q.Later
}

// ExpectedTotal returns the predictor's total expected row count.
func (p *Predictor) ExpectedTotal() float64 {
	t := p.Immediate + p.Later
	for _, v := range p.Buckets {
		t += v
	}
	return t
}

// RowsBy returns the expected cumulative rows processed by the given delay
// after query injection.
func (p *Predictor) RowsBy(delay time.Duration) float64 {
	rows := p.Immediate
	for i := 0; i < NumBuckets; i++ {
		b := Boundary(i)
		if b <= delay {
			rows += p.Buckets[i]
			continue
		}
		// Interpolate within the bucket on log time.
		lo := time.Duration(0)
		if i > 0 {
			lo = Boundary(i - 1)
		}
		if delay > lo {
			frac := float64(delay-lo) / float64(b-lo)
			rows += p.Buckets[i] * frac
		}
		break
	}
	return rows
}

// CompletenessBy returns the expected completeness (0..1) at the given
// delay: RowsBy(delay) / ExpectedTotal. An empty predictor reports 1.
func (p *Predictor) CompletenessBy(delay time.Duration) float64 {
	total := p.ExpectedTotal()
	if total <= 0 {
		return 1
	}
	return p.RowsBy(delay) / total
}

// DelayFor returns the smallest bucket boundary at which expected
// completeness reaches frac, and false when frac is never reached within
// the predictor's horizon (the remaining mass is in Later).
func (p *Predictor) DelayFor(frac float64) (time.Duration, bool) {
	total := p.ExpectedTotal()
	if total <= 0 {
		return 0, true
	}
	need := frac * total
	rows := p.Immediate
	if rows >= need {
		return 0, true
	}
	for i := 0; i < NumBuckets; i++ {
		rows += p.Buckets[i]
		if rows >= need {
			return Boundary(i), true
		}
	}
	return 0, false
}

// EncodedSize is the fixed wire size of a predictor.
const EncodedSize = 8 * (NumBuckets + 2)

// Encode appends the predictor's fixed-size wire form to dst.
func (p *Predictor) Encode(dst []byte) []byte {
	var buf [8]byte
	put := func(v float64) {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		dst = append(dst, buf[:]...)
	}
	put(p.Immediate)
	for _, v := range p.Buckets {
		put(v)
	}
	put(p.Later)
	return dst
}

// Decode parses a predictor from the front of b, returning the remaining
// bytes.
func Decode(b []byte) (*Predictor, []byte, error) {
	if len(b) < EncodedSize {
		return nil, nil, fmt.Errorf("predictor: need %d bytes, have %d", EncodedSize, len(b))
	}
	p := &Predictor{}
	get := func() float64 {
		v := math.Float64frombits(binary.BigEndian.Uint64(b))
		b = b[8:]
		return v
	}
	p.Immediate = get()
	for i := range p.Buckets {
		p.Buckets[i] = get()
	}
	p.Later = get()
	return p, b, nil
}
