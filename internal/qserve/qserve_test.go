package qserve

import (
	"encoding/json"
	"testing"
	"time"
)

// testWorkload is a small custom plan for unit tests: a 15-minute burst
// at moderate rates with a 45-minute drain.
func testWorkload() Workload {
	return Workload{
		Name: "test", Start: 2 * time.Hour, Window: 15 * time.Minute, Drain: 45 * time.Minute,
		Loads: []ClassLoad{
			{Class: Interactive, PerHour: 120, Clients: 8, Templates: InteractiveTemplates},
			{Class: Batch, PerHour: 16, Clients: 2, Templates: BatchTemplates},
		},
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	w := Heavy(1)
	a1, a2 := w.Arrivals(7), w.Arrivals(7)
	if len(a1) == 0 {
		t.Fatal("no arrivals generated")
	}
	j1, _ := json.Marshal(a1)
	j2, _ := json.Marshal(a2)
	if string(j1) != string(j2) {
		t.Fatal("arrival sequence not deterministic for equal seeds")
	}
	for i := 1; i < len(a1); i++ {
		if a1[i].At < a1[i-1].At {
			t.Fatalf("arrivals out of order at %d: %s after %s", i, a1[i].At, a1[i-1].At)
		}
	}
	for _, a := range a1 {
		if a.At < w.Start || a.At >= w.Start+w.Window {
			t.Fatalf("arrival at %s outside window [%s, %s)", a.At, w.Start, w.Start+w.Window)
		}
	}
	if d := w.Arrivals(8); len(d) > 0 {
		jd, _ := json.Marshal(d)
		if string(jd) == string(j1) {
			t.Fatal("different seeds produced identical arrivals")
		}
	}
}

func TestSpikeRaisesArrivalRate(t *testing.T) {
	light, spike := Light(1), Spike(1)
	nl, ns := len(light.Arrivals(3)), len(spike.Arrivals(3))
	if ns <= nl {
		t.Fatalf("spike produced %d arrivals, light %d — spike window had no effect", ns, nl)
	}
	// The extra arrivals must land inside the spike window.
	inWindow := 0
	for _, a := range spike.Arrivals(3) {
		if a.At >= spike.SpikeAt && a.At < spike.SpikeAt+spike.SpikeFor {
			inWindow++
		}
	}
	expectBase := float64(nl) * float64(spike.SpikeFor) / float64(light.Window)
	if float64(inWindow) < 2*expectBase {
		t.Fatalf("spike window holds %d arrivals, want well above the base %.0f", inWindow, expectBase)
	}
}

func TestServiceRunsWorkloadEndToEnd(t *testing.T) {
	cfg := DefaultConfig(120, 5, testWorkload())
	rep := Run(cfg)
	if rep.Queries == 0 {
		t.Fatal("no queries arrived")
	}
	ic := rep.Class("interactive")
	if ic.Started == 0 {
		t.Fatal("no interactive query started")
	}
	if ic.Started > 0 && ic.ThroughputPerHour == 0 {
		t.Fatal("queries started but none reached 90% completeness")
	}
	if ic.LatencyP50MS <= 0 {
		t.Fatalf("interactive p50 latency %dms", ic.LatencyP50MS)
	}
	if ic.Arrived != ic.Shed+ic.Started+(ic.Arrived-ic.Shed-ic.Started) {
		t.Fatal("class accounting inconsistent")
	}
	bc := rep.Class("batch")
	if bc.Arrived == 0 {
		t.Fatal("no batch arrivals")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(120, 5, testWorkload())
	r1, r2 := Run(cfg), Run(cfg)
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatalf("reports differ for identical configs:\n%s\n%s", j1, j2)
	}
}

func TestAdmissionShedsUnderTinyBudget(t *testing.T) {
	cfg := DefaultConfig(120, 5, testWorkload())
	// Starve the pipe so queues exceed every delay budget quickly.
	cfg.Budget = 1
	cfg.ClassCap = [NumClasses]int{Interactive: 1, Batch: 1}
	cfg.MaxCost = 1
	cfg.UnitHold = 5 * time.Minute
	cfg.DelayBudget = [NumClasses]time.Duration{Interactive: 10 * time.Minute, Batch: 10 * time.Minute}
	rep := Run(cfg)
	shed := rep.Class("interactive").Shed + rep.Class("batch").Shed
	if shed == 0 {
		t.Fatal("overloaded service shed nothing")
	}

	cfg.DisableAdmission = true
	rep = Run(cfg)
	if s := rep.Class("interactive").Shed + rep.Class("batch").Shed; s != 0 {
		t.Fatalf("admission-ablated service shed %d queries", s)
	}
}

func TestVariantNames(t *testing.T) {
	cfg := Config{}
	if cfg.Variant() != "full" {
		t.Fatalf("variant %q", cfg.Variant())
	}
	cfg.DisableAdmission = true
	if cfg.Variant() != "ablate-admission" {
		t.Fatalf("variant %q", cfg.Variant())
	}
	cfg.DisableAdmission, cfg.DisablePriority = false, true
	if cfg.Variant() != "ablate-priority" {
		t.Fatalf("variant %q", cfg.Variant())
	}
}
