// Package qserve is the delay-aware query service that sits between
// open-loop clients and a core.Cluster. Seaweed's metadata layer makes a
// query's outcome largely predictable *before* the query runs: the
// injector's summaries estimate the result's row volume, and the
// completeness predictor estimates when those rows will have arrived.
// This package turns those predictions into operational decisions:
//
//   - Admission: a query whose predicted latency (queue wait + its own
//     result window + the predicted time-to-90%-completeness for its
//     template) exceeds its class delay budget is shed immediately —
//     the client learns "not in time" in milliseconds instead of
//     discovering it an hour later.
//   - Scheduling: admitted queries multiplex a fixed query-bandwidth
//     budget. Dispatch order is shortest-predicted-job-first over the
//     predicted time to 90% completeness, with per-class occupancy caps
//     and an anti-starvation reservation for the oldest waiter.
//
// Both mechanisms can be ablated independently (DisableAdmission,
// DisablePriority) to measure what each contributes; the experiments
// package's WorkloadSweep does exactly that.
package qserve

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relq"
	"repro/internal/simnet"
)

// Config parameterizes one query-service run.
type Config struct {
	// N is the endsystem population of the simulated cluster.
	N int
	// Seed drives the trace, the cluster, and the workload streams.
	Seed int64
	// Workload is the open-loop arrival plan.
	Workload Workload

	// Budget is the service's total query-bandwidth budget in cost
	// units: the summed cost of concurrently running queries never
	// exceeds it. It models the shared pipe the paper's constant-rate
	// query traffic flows through.
	Budget int
	// ClassCap bounds one class's share of Budget, so batch scans can
	// never occupy the whole pipe.
	ClassCap [NumClasses]int
	// UnitHold is how long one cost unit of a query occupies the pipe: a
	// query of cost c holds c units for c*UnitHold (larger results keep
	// their tree hot longer).
	UnitHold time.Duration
	// RowsPerUnit converts the metadata-predicted result row volume into
	// cost units.
	RowsPerUnit float64
	// MaxCost caps a single query's cost units.
	MaxCost int

	// DelayBudget is each class's end-to-end latency budget; admission
	// sheds queries predicted to miss it.
	DelayBudget [NumClasses]time.Duration
	// ResultWindow is how long a started query of each class is allowed
	// to stream results before the service retires it (explicit cancel,
	// reclaiming its aggregation tree).
	ResultWindow [NumClasses]time.Duration
	// StarveAfter is the anti-starvation bound: once the oldest queued
	// query has waited this long, dispatch is reserved for it until it
	// fits.
	StarveAfter time.Duration
	// EWMAAlpha is the weight of the newest observation in the
	// per-template time-to-90% estimate (0 < alpha <= 1).
	EWMAAlpha float64

	// DisableAdmission ablates the admission controller: nothing is ever
	// shed.
	DisableAdmission bool
	// DisablePriority ablates delay-aware dispatch: strict FIFO with no
	// bypass (head-of-line blocking included).
	DisablePriority bool

	// Obs, when set, receives the run's metrics; nil creates a private
	// layer.
	Obs *obs.Obs
}

// DefaultConfig returns the service configuration the named workloads are
// sized against.
func DefaultConfig(n int, seed int64, w Workload) Config {
	return Config{
		N: n, Seed: seed, Workload: w,
		Budget:       8,
		ClassCap:     [NumClasses]int{Interactive: 8, Batch: 6},
		UnitHold:     20 * time.Second,
		RowsPerUnit:  0, // filled by Run from the workload's data scale
		MaxCost:      6,
		DelayBudget:  [NumClasses]time.Duration{Interactive: 2 * time.Hour, Batch: 10 * time.Minute},
		ResultWindow: [NumClasses]time.Duration{Interactive: 3 * time.Minute, Batch: 10 * time.Minute},
		StarveAfter:  20 * time.Minute,
		EWMAAlpha:    0.3,
	}
}

// tracked is one query's service-side record, kept for the whole run so
// the report can compute arrival-to-t90 latencies post hoc.
type tracked struct {
	seq      int
	arr      Arrival
	class    ClassID
	query    *relq.Query
	injector simnet.Endpoint
	cost     int
	hold     time.Duration

	sq     *core.ServicedQuery
	handle *core.QueryHandle
	queued time.Duration

	updates []updateRec
}

type updateRec struct {
	at    time.Duration
	count int64
}

// Service multiplexes an open-loop workload onto one cluster. It runs
// entirely in virtual time on the simulation goroutine.
type Service struct {
	cfg   Config
	c     *core.Cluster
	svc   *core.QueryService
	sched simnet.Scheduler

	templates map[string]*relq.Query
	queue     []*tracked // arrival order; SJF scans, FIFO pops head
	all       []*tracked

	inflight      int
	classInflight [NumClasses]int
	open          int // admitted, not yet retired (queued + running)
	peakOpen      int
	ewma          map[string]time.Duration // template name -> t90 estimate
	o             *obs.Obs
	gQueueDepth   *obs.Gauge // qserve_queue_depth: current scheduler queue length
}

// NewService attaches a query service to a running cluster.
func NewService(cfg Config, c *core.Cluster) *Service {
	s := &Service{
		cfg: cfg, c: c, svc: core.NewQueryService(c), sched: c.Sched,
		templates: make(map[string]*relq.Query),
		ewma:      make(map[string]time.Duration),
		o:         c.Obs(),
	}
	s.gQueueDepth = s.o.Gauge("qserve_queue_depth")
	for _, load := range cfg.Workload.Loads {
		for _, t := range load.Templates {
			if _, ok := s.templates[t.Name]; !ok {
				s.templates[t.Name] = relq.MustParse(t.SQL)
			}
		}
	}
	return s
}

// Schedule registers every workload arrival with the cluster's scheduler.
func (s *Service) Schedule() {
	for _, a := range s.cfg.Workload.Arrivals(s.cfg.Seed) {
		a := a
		s.sched.At(a.At, func() { s.arrive(a) })
	}
}

// pickInjector maps the arrival's random pick to a live endsystem by
// linear probe. The workload is open-loop: clients exist outside the
// cluster and connect to whatever endsystem is up.
func (s *Service) pickInjector(pick int64) (simnet.Endpoint, bool) {
	n := len(s.c.Nodes)
	start := int(pick % int64(n))
	for i := 0; i < n; i++ {
		ep := simnet.Endpoint((start + i) % n)
		if s.c.Nodes[ep].Alive() {
			return ep, true
		}
	}
	return 0, false
}

// estimateCost converts the injector's metadata-predicted result volume
// into pipe cost units. The estimate is the injector's own-row histogram
// estimate scaled to the population — exactly the summary data Seaweed
// replicates, so admission needs no extra protocol.
func (s *Service) estimateCost(injector simnet.Endpoint, q *relq.Query) int {
	estRows := s.c.Nodes[injector].EstimateOwnRows(q) * float64(s.cfg.N)
	cost := int(math.Round(estRows / s.cfg.RowsPerUnit))
	if cost < 1 {
		cost = 1
	}
	if cost > s.cfg.MaxCost {
		cost = s.cfg.MaxCost
	}
	return cost
}

// queuedWork is the queue's total pipe occupancy demand in unit-seconds.
func (s *Service) queuedWork() time.Duration {
	var w time.Duration
	for _, t := range s.queue {
		w += time.Duration(t.cost) * t.hold
	}
	return w
}

// predictedWait estimates how long a new arrival would queue: the work
// ahead of it divided by the pipe's drain rate.
func (s *Service) predictedWait() time.Duration {
	return s.queuedWork() / time.Duration(s.cfg.Budget)
}

// predictedT90 is the service's running estimate of a template's time
// from dispatch to 90% completeness: an EWMA over observed runs, seeded
// by the query's own result window as a prior.
func (s *Service) predictedT90(t *tracked) time.Duration {
	if est, ok := s.ewma[t.arr.Tmpl.Name]; ok {
		return est
	}
	return t.hold
}

func (s *Service) arrive(a Arrival) {
	class := a.Tmpl.Class
	injector, ok := s.pickInjector(a.InjectorPick)
	if !ok {
		// Nobody is up; the client's connection itself fails. Not counted
		// as a serviced query.
		s.o.Counter("qserve_no_endsystem").Inc()
		return
	}
	q := s.templates[a.Tmpl.Name]
	t := &tracked{
		seq: len(s.all), arr: a, class: class, query: q, injector: injector,
	}
	t.cost = s.estimateCost(injector, q)
	t.hold = time.Duration(t.cost) * s.cfg.UnitHold
	t.sq = s.svc.Admit(injector, q, class.String())
	s.all = append(s.all, t)
	s.o.Counter("qserve_arrivals_" + class.String()).Inc()

	if !s.cfg.DisableAdmission {
		predicted := s.predictedWait() + t.hold + s.predictedT90(t)
		if predicted > s.cfg.DelayBudget[class] {
			s.svc.Shed(t.sq)
			s.o.Counter("qserve_shed_" + class.String()).Inc()
			return
		}
	}
	s.svc.Enqueue(t.sq)
	t.queued = s.sched.Now()
	s.queue = append(s.queue, t)
	s.gQueueDepth.Set(float64(len(s.queue)))
	s.open++
	if s.open > s.peakOpen {
		s.peakOpen = s.open
	}
	s.pump()
}

// fits reports whether the query can start under the budget and its
// class cap right now.
func (s *Service) fits(t *tracked) bool {
	return s.inflight+t.cost <= s.cfg.Budget &&
		s.classInflight[t.class]+t.cost <= s.cfg.ClassCap[t.class]
}

// pump dispatches queued queries while budget allows.
//
// FIFO ablation: only the head may start — a head that does not fit
// blocks the line (that head-of-line cost is precisely what the
// delay-aware order removes).
//
// Delay-aware order: shortest predicted job first over predicted
// time-to-90% (the query's own hold plus the template's observed-t90
// EWMA), except that once the oldest waiter has starved past
// StarveAfter, its units are reserved: freed capacity accumulates for it
// until it fits. The reservation backfills — queries that fit within the
// capacity *beyond* the starved query's need may still start — so a
// large batch scan waiting for the pipe to drain throttles interactive
// flow instead of stalling it (under sustained batch pressure starved
// scans arrive back to back, and head-only reservations would chain
// those full stalls into long interactive outages).
func (s *Service) pump() {
	for len(s.queue) > 0 {
		idx := -1
		if s.cfg.DisablePriority {
			if !s.fits(s.queue[0]) {
				return
			}
			idx = 0
		} else if head := s.queue[0]; s.sched.Now()-head.queued > s.cfg.StarveAfter {
			if s.fits(head) {
				idx = 0
			} else {
				bestKey := time.Duration(math.MaxInt64)
				for i, t := range s.queue[1:] {
					if s.inflight+t.cost > s.cfg.Budget-head.cost {
						continue
					}
					cc := s.classInflight[t.class] + t.cost
					if t.class == head.class {
						cc += head.cost
					}
					if cc > s.cfg.ClassCap[t.class] {
						continue
					}
					key := t.hold + s.predictedT90(t)
					if key < bestKey {
						bestKey, idx = key, i+1
					}
				}
				if idx < 0 {
					return
				}
			}
		} else {
			bestKey := time.Duration(math.MaxInt64)
			for i, t := range s.queue {
				if !s.fits(t) {
					continue
				}
				key := t.hold + s.predictedT90(t)
				if key < bestKey { // ties resolve to the earlier arrival
					bestKey, idx = key, i
				}
			}
			if idx < 0 {
				return
			}
		}
		t := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.gQueueDepth.Set(float64(len(s.queue)))
		s.start(t)
	}
}

func (s *Service) start(t *tracked) {
	t.handle = s.svc.Start(t.sq)
	s.inflight += t.cost
	s.classInflight[t.class] += t.cost
	t.handle.OnUpdate(func(u core.ResultUpdate) {
		t.updates = append(t.updates, updateRec{at: u.At, count: u.Partial.Count})
	})
	cost, class := t.cost, t.class
	s.sched.After(t.hold, func() {
		s.inflight -= cost
		s.classInflight[class] -= cost
		s.pump()
	})
	s.sched.After(s.cfg.ResultWindow[t.class], func() { s.retire(t) })
}

// retire ends a started query at its result window: the observed
// time-to-90% feeds the template EWMA, per-class metrics are recorded,
// and the query is cancelled in the cluster — which reclaims its
// aggregation tree instead of letting refresh traffic run to the TTL.
func (s *Service) retire(t *tracked) {
	if t90, ok := t.t90(); ok {
		obs90 := t90 - t.sq.StartedAt
		name := t.arr.Tmpl.Name
		if prev, seen := s.ewma[name]; seen {
			a := s.cfg.EWMAAlpha
			s.ewma[name] = time.Duration(a*float64(obs90) + (1-a)*float64(prev))
		} else {
			s.ewma[name] = obs90
		}
	}
	s.recordMetrics(t, s.sched.Now())
	s.open--
	s.svc.Cancel(t.sq)
}

// t90 returns the virtual instant the query's result first reached 90%
// of its final row count, post hoc over the update log.
func (t *tracked) t90() (time.Duration, bool) {
	if len(t.updates) == 0 {
		return 0, false
	}
	final := t.updates[len(t.updates)-1].count
	need := int64(math.Ceil(0.9 * float64(final)))
	for _, u := range t.updates {
		if u.count >= need {
			return u.at, true
		}
	}
	return 0, false
}

// latency is the client-visible delay: arrival to 90% of the final
// result. Queries the scheduler never started are censored at end (the
// delay is the scheduler's doing). Queries that started but produced no
// updates failed for cluster-side reasons (e.g. the injector endsystem
// went down) and carry no latency sample — see ClassStats.Failed.
func (t *tracked) latency(end time.Duration) (time.Duration, bool) {
	if at, ok := t.t90(); ok {
		return at - t.arr.At, true
	}
	if t.sq.StartedAt < 0 {
		return end - t.arr.At, true
	}
	return 0, false
}

func (s *Service) recordMetrics(t *tracked, now time.Duration) {
	class := t.class.String()
	if lat, ok := t.latency(now); ok {
		s.o.DurationHistogram("qserve_latency_" + class + "_ns").ObserveDuration(lat)
	}
	if t.sq.StartedAt >= 0 {
		s.o.DurationHistogram("qserve_wait_" + class + "_ns").
			ObserveDuration(t.sq.StartedAt - t.arr.At)
	}
	if t.handle != nil && t.handle.Predictor != nil && len(t.updates) > 0 {
		if total := t.handle.Predictor.ExpectedTotal(); total > 0 {
			pct := 100 * float64(t.updates[len(t.updates)-1].count) / total
			s.o.Histogram("qserve_completeness_pct_" + class).Observe(int64(pct))
		}
	}
}

// Run builds a cluster for the config, drives the workload through a
// fresh query service, and reports per-class delay statistics. The
// report is a pure function of (Config minus Obs): it contains no wall
// timing, so equal configurations produce byte-identical reports.
func Run(cfg Config) *Report {
	w := cfg.Workload
	if cfg.RowsPerUnit <= 0 {
		// Tie the cost scale to the simulated data volume: the cluster
		// below generates ~200 flows/endsystem/day, so a full-table scan
		// (the largest query) lands at MaxCost and filtered interactive
		// aggregates at a third of it.
		days := float64(w.End()+time.Hour) / float64(24*time.Hour)
		cfg.RowsPerUnit = 200 * days * float64(cfg.N) / float64(cfg.MaxCost)
	}
	trace := avail.GenerateFarsite(avail.DefaultFarsiteConfig(cfg.N, w.End()+time.Hour, cfg.Seed))
	ccfg := core.DefaultClusterConfig(trace, cfg.Seed)
	ccfg.Workload.MeanFlowsPerDay = 200
	// Trees are reclaimed by the service's explicit retire cancel; the
	// TTL stays as the backstop for cancels lost to churn.
	ccfg.Node.Agg.QueryTTL = 4 * time.Hour
	ccfg.Obs = cfg.Obs
	c := core.NewCluster(ccfg)
	s := NewService(cfg, c)
	s.Schedule()
	c.RunUntil(w.End())
	return s.report()
}

// Variant names the configuration's ablation state for reports.
func (cfg Config) Variant() string {
	switch {
	case cfg.DisableAdmission && cfg.DisablePriority:
		return "ablate-both"
	case cfg.DisableAdmission:
		return "ablate-admission"
	case cfg.DisablePriority:
		return "ablate-priority"
	}
	return "full"
}

// ClassStats is one class's outcome summary. Times are virtual
// milliseconds; latency is arrival to 90% of the final result. Shed
// queries never ran and carry no latency. Censored queries were admitted
// but never dispatched by end of run — that delay is the scheduler's, so
// they are charged end-of-run latency. Failed queries started but
// streamed no results (injector churn, not scheduling) and are excluded
// from the latency distribution.
type ClassStats struct {
	Class             string  `json:"class"`
	Arrived           int     `json:"arrived"`
	Shed              int     `json:"shed"`
	Started           int     `json:"started"`
	Censored          int     `json:"censored"`
	Failed            int     `json:"failed"`
	ThroughputPerHour float64 `json:"throughput_per_hour"`
	LatencyP50MS      int64   `json:"latency_p50_ms"`
	LatencyP99MS      int64   `json:"latency_p99_ms"`
	WaitP50MS         int64   `json:"wait_p50_ms"`
	WaitP99MS         int64   `json:"wait_p99_ms"`
	MeanCompleteness  float64 `json:"mean_completeness_pct"`
}

// Report is one run's deterministic outcome.
type Report struct {
	Variant  string `json:"variant"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Seed     int64  `json:"seed"`
	Queries  int    `json:"queries"`
	// PeakOpen is the maximum number of simultaneously open queries —
	// admitted and not yet retired — over the run: the concurrency the
	// service actually absorbed.
	PeakOpen int          `json:"peak_open"`
	Classes  []ClassStats `json:"classes"`
}

// Class returns the stats for a class name, or a zero value.
func (r *Report) Class(name string) ClassStats {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassStats{}
}

func (s *Service) report() *Report {
	end := s.cfg.Workload.End()
	rep := &Report{
		Variant:  s.cfg.Variant(),
		Workload: s.cfg.Workload.Name,
		N:        s.cfg.N,
		Seed:     s.cfg.Seed,
		Queries:  len(s.all),
		PeakOpen: s.peakOpen,
	}
	for class := ClassID(0); class < NumClasses; class++ {
		var (
			st              ClassStats
			lats, waits     []time.Duration
			complSum        float64
			complN, done90s int
		)
		st.Class = class.String()
		for _, t := range s.all {
			if t.class != class {
				continue
			}
			st.Arrived++
			if t.sq.State == core.QueryShed {
				st.Shed++
				continue
			}
			if t.sq.StartedAt >= 0 {
				st.Started++
				waits = append(waits, t.sq.StartedAt-t.arr.At)
			}
			if _, ok := t.t90(); ok {
				done90s++
			} else if t.sq.StartedAt >= 0 {
				st.Failed++
			} else {
				st.Censored++
			}
			if lat, ok := t.latency(end); ok {
				lats = append(lats, lat)
			}
			if t.handle != nil && t.handle.Predictor != nil && len(t.updates) > 0 {
				if total := t.handle.Predictor.ExpectedTotal(); total > 0 {
					complSum += 100 * float64(t.updates[len(t.updates)-1].count) / total
					complN++
				}
			}
		}
		st.ThroughputPerHour = float64(done90s) / (float64(end-s.cfg.Workload.Start) / float64(time.Hour))
		st.LatencyP50MS = percentile(lats, 0.50).Milliseconds()
		st.LatencyP99MS = percentile(lats, 0.99).Milliseconds()
		st.WaitP50MS = percentile(waits, 0.50).Milliseconds()
		st.WaitP99MS = percentile(waits, 0.99).Milliseconds()
		if complN > 0 {
			st.MeanCompleteness = complSum / float64(complN)
		}
		rep.Classes = append(rep.Classes, st)
	}
	return rep
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "qserve %s workload=%s n=%d seed=%d queries=%d peak_open=%d\n",
		r.Variant, r.Workload, r.N, r.Seed, r.Queries, r.PeakOpen)
	fmt.Fprintf(w, "  %-12s %8s %6s %8s %9s %7s %8s %12s %12s %10s %10s %7s\n",
		"class", "arrived", "shed", "started", "censored", "failed", "qph",
		"lat_p50_ms", "lat_p99_ms", "wait_p50", "wait_p99", "compl%")
	for _, c := range r.Classes {
		fmt.Fprintf(w, "  %-12s %8d %6d %8d %9d %7d %8.1f %12d %12d %10d %10d %7.1f\n",
			c.Class, c.Arrived, c.Shed, c.Started, c.Censored, c.Failed, c.ThroughputPerHour,
			c.LatencyP50MS, c.LatencyP99MS, c.WaitP50MS, c.WaitP99MS, c.MeanCompleteness)
	}
}
