package qserve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/runner"
)

// ClassID is a workload traffic class.
type ClassID int

const (
	// Interactive queries are small, filtered aggregates a user is
	// waiting on; the service's delay budgets and priorities favor them.
	Interactive ClassID = iota
	// Batch queries are full-table scans feeding reports; large expected
	// row counts, generous result windows, low urgency.
	Batch
	// NumClasses is the number of traffic classes.
	NumClasses
)

// String renders the class name.
func (c ClassID) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("ClassID(%d)", int(c))
}

// Template is one query shape the workload draws from.
type Template struct {
	Name  string
	SQL   string
	Class ClassID
}

// InteractiveTemplates are the filtered aggregates the interactive class
// draws from (the paper's example monitoring queries).
var InteractiveTemplates = []Template{
	{Name: "http-bytes", SQL: "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80", Class: Interactive},
	{Name: "big-flows", SQL: "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000", Class: Interactive},
	{Name: "smb-avg", SQL: "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'", Class: Interactive},
}

// BatchTemplates are the full-table scans the batch class draws from.
var BatchTemplates = []Template{
	{Name: "all-flows", SQL: "SELECT COUNT(*) FROM Flow", Class: Batch},
	{Name: "total-bytes", SQL: "SELECT SUM(Bytes) FROM Flow", Class: Batch},
	{Name: "total-packets", SQL: "SELECT SUM(Packets) FROM Flow", Class: Batch},
}

// ClassLoad is one class's open-loop arrival process: Clients virtual
// clients jointly producing PerHour Poisson arrivals, each drawing
// uniformly from Templates.
type ClassLoad struct {
	Class     ClassID
	PerHour   float64
	Clients   int
	Templates []Template
}

// Workload is an open-loop arrival plan. Arrivals land in
// [Start, Start+Window); the simulation then runs Drain longer so queued
// work can finish. An optional spike multiplies every load's rate by
// SpikeFactor inside [SpikeAt, SpikeAt+SpikeFor).
type Workload struct {
	Name   string
	Start  time.Duration
	Window time.Duration
	Drain  time.Duration
	Loads  []ClassLoad

	SpikeAt     time.Duration
	SpikeFor    time.Duration
	SpikeFactor float64
}

// End is the simulation end instant: last possible arrival plus drain.
func (w Workload) End() time.Duration { return w.Start + w.Window + w.Drain }

// The named workloads are sized against the default service capacity
// (see DefaultConfig): with Budget 8, UnitHold 20s, interactive cost 2
// and batch cost 6, the service completes ~360 interactive or ~40 batch
// queries per hour when serving one class alone.
const (
	workloadStart  = 10 * time.Hour // mid-morning: the farsite office population is up
	workloadWindow = 2 * time.Hour
	workloadDrain  = 3 * time.Hour
)

// Light is an underloaded mix: interactive at ~half the service's
// interactive-only capacity plus a trickle of batch scans.
func Light(scale float64) Workload {
	if scale <= 0 {
		scale = 1
	}
	return Workload{
		Name: "light", Start: workloadStart, Window: workloadWindow, Drain: workloadDrain,
		Loads: []ClassLoad{
			{Class: Interactive, PerHour: 180 * scale, Clients: 24, Templates: InteractiveTemplates},
			{Class: Batch, PerHour: 8 * scale, Clients: 4, Templates: BatchTemplates},
		},
	}
}

// Heavy is an overload mix: interactive alone fits (~0.7x capacity) but
// batch pushes the offered load to ~1.5x capacity, forcing the admission
// controller to shed and the scheduler to choose who waits.
func Heavy(scale float64) Workload {
	if scale <= 0 {
		scale = 1
	}
	return Workload{
		Name: "heavy", Start: workloadStart, Window: workloadWindow, Drain: workloadDrain,
		Loads: []ClassLoad{
			{Class: Interactive, PerHour: 252 * scale, Clients: 32, Templates: InteractiveTemplates},
			{Class: Batch, PerHour: 32 * scale, Clients: 8, Templates: BatchTemplates},
		},
	}
}

// Spike is the light mix with a 15-minute interactive burst at 4x the
// base rate half an hour in.
func Spike(scale float64) Workload {
	w := Light(scale)
	w.Name = "spike"
	w.SpikeAt = w.Start + 30*time.Minute
	w.SpikeFor = 15 * time.Minute
	w.SpikeFactor = 4
	return w
}

// Named returns the workload preset by name.
func Named(name string, scale float64) (Workload, bool) {
	switch name {
	case "light":
		return Light(scale), true
	case "heavy":
		return Heavy(scale), true
	case "spike":
		return Spike(scale), true
	}
	return Workload{}, false
}

// Arrival is one pregenerated query arrival. InjectorPick is a raw
// deterministic random value the service maps to a live endsystem at
// arrival time (the workload is generated before the cluster exists).
type Arrival struct {
	At           time.Duration
	Tmpl         Template
	Client       int
	Seq          int
	InjectorPick int64
}

// Arrivals expands the plan into a deterministic arrival sequence: every
// virtual client is an independent Poisson process on its own
// runner.SplitSeed stream, so the sequence is byte-identical for a given
// (workload, seed) no matter how the simulation is parallelized, and
// adding clients to one class does not disturb another's stream.
func (w Workload) Arrivals(seed int64) []Arrival {
	var out []Arrival
	for li, load := range w.Loads {
		if load.PerHour <= 0 || load.Clients <= 0 {
			continue
		}
		meanGap := time.Duration(float64(load.Clients) / load.PerHour * float64(time.Hour))
		for client := 0; client < load.Clients; client++ {
			rng := rand.New(rand.NewSource(runner.SplitSeed(seed, int64(li)<<20|int64(client))))
			at := w.Start
			for seq := 0; ; seq++ {
				gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
				if w.SpikeFactor > 1 && at >= w.SpikeAt && at < w.SpikeAt+w.SpikeFor {
					gap = time.Duration(float64(gap) / w.SpikeFactor)
				}
				at += gap
				if at >= w.Start+w.Window {
					break
				}
				out = append(out, Arrival{
					At:           at,
					Tmpl:         load.Templates[rng.Intn(len(load.Templates))],
					Client:       li<<20 | client,
					Seq:          seq,
					InjectorPick: int64(rng.Int63()),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Seq < b.Seq
	})
	return out
}

// percentile returns the q-quantile (0..1) of the samples by nearest-rank
// on a sorted copy; 0 when empty.
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
