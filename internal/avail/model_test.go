package avail

import (
	"math/rand"
	"testing"
	"time"
)

func TestModelPeriodicClassification(t *testing.T) {
	m := &Model{}
	// All up events at 8am: strongly periodic.
	for i := 0; i < 20; i++ {
		m.ObserveUpEvent(time.Duration(i)*Day+8*time.Hour+30*time.Minute, 14*time.Hour)
	}
	if !m.Periodic() {
		t.Error("concentrated up events must classify as periodic")
	}

	// Uniform up events: not periodic.
	u := &Model{}
	for h := 0; h < 24; h++ {
		u.ObserveUpEvent(time.Duration(h)*time.Hour+30*time.Minute, time.Hour)
	}
	if u.Periodic() {
		t.Error("uniform up events must not classify as periodic")
	}

	// Empty model: not periodic.
	if (&Model{}).Periodic() {
		t.Error("empty model must not be periodic")
	}
}

func TestProbUpByMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := &Model{}
		for i := 0; i < 30; i++ {
			at := time.Duration(rng.Int63n(int64(4 * Week)))
			down := time.Duration(rng.Int63n(int64(2 * Day)))
			m.ObserveUpEvent(at, down)
		}
		now := time.Duration(rng.Int63n(int64(Week)))
		downSince := now - time.Duration(rng.Int63n(int64(Day)))
		prev := 0.0
		for dt := time.Minute; dt <= 3*Day; dt *= 2 {
			p := m.ProbUpBy(now, downSince, now+dt)
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of [0,1]", p)
			}
			if p < prev-1e-12 {
				t.Fatalf("ProbUpBy not monotone: %v after %v", p, prev)
			}
			prev = p
		}
	}
}

func TestProbUpByPeriodicPrediction(t *testing.T) {
	m := &Model{}
	// Machine always comes up between 8 and 9am.
	for i := 0; i < 20; i++ {
		m.ObserveUpEvent(time.Duration(i)*Day+8*time.Hour+20*time.Minute, 14*time.Hour)
	}
	if !m.Periodic() {
		t.Fatal("setup: model should be periodic")
	}
	// It is 2am; machine went down at 6pm yesterday.
	now := 10*Day + 2*time.Hour
	downSince := 9*Day + 18*time.Hour
	// By 7am: should still be down.
	if p := m.ProbUpBy(now, downSince, now+5*time.Hour); p > 0.05 {
		t.Errorf("P(up by 7am) = %v, want ≈0", p)
	}
	// By 10am: should be up.
	if p := m.ProbUpBy(now, downSince, now+8*time.Hour); p < 0.95 {
		t.Errorf("P(up by 10am) = %v, want ≈1", p)
	}
	// A full day out: certainty.
	if p := m.ProbUpBy(now, downSince, now+25*time.Hour); p != 1 {
		t.Errorf("P(up within a day) = %v, want 1", p)
	}
}

func TestProbUpByDurationConditioning(t *testing.T) {
	m := &Model{}
	// Downtimes always ~2 hours, at scattered hours (non-periodic).
	for h := 0; h < 24; h++ {
		m.ObserveUpEvent(time.Duration(h)*time.Hour+30*time.Minute, 2*time.Hour)
	}
	if m.Periodic() {
		t.Fatal("setup: model should be non-periodic")
	}
	now := 5 * Day
	// Just went down: P(up within 4h) should be high (downtimes are ~2h).
	if p := m.ProbUpBy(now, now, now+4*time.Hour); p < 0.8 {
		t.Errorf("P(up within 4h of going down) = %v, want high", p)
	}
	// Just went down: P(up within 10 min) should be low.
	if p := m.ProbUpBy(now, now, now+10*time.Minute); p > 0.2 {
		t.Errorf("P(up within 10min) = %v, want low", p)
	}
	// Already down 3x longer than ever seen: history says nothing; the
	// smoothing tail keeps the estimate defined and below certainty.
	p := m.ProbUpBy(now, now-6*time.Hour, now+time.Hour)
	if p < 0 || p > 1 {
		t.Errorf("conditional estimate out of range: %v", p)
	}
}

func TestProbUpByPastTargetIsZero(t *testing.T) {
	m := &Model{}
	m.ObserveUpEvent(time.Hour, time.Hour)
	if p := m.ProbUpBy(5*time.Hour, 4*time.Hour, 5*time.Hour); p != 0 {
		t.Errorf("P(up by now) = %v, want 0", p)
	}
}

func TestUninformedPrior(t *testing.T) {
	m := &Model{}
	p1 := m.ProbUpBy(0, 0, 1*time.Hour)
	p2 := m.ProbUpBy(0, 0, 12*time.Hour)
	p3 := m.ProbUpBy(0, 0, 100*time.Hour)
	if !(p1 < p2 && p2 < p3) {
		t.Errorf("prior not increasing: %v %v %v", p1, p2, p3)
	}
	if p2 < 0.5 || p2 > 0.75 {
		t.Errorf("P(up within 12h) under prior = %v, want ≈0.63", p2)
	}
}

func TestModelEncodeDecode(t *testing.T) {
	m := &Model{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		m.ObserveUpEvent(time.Duration(rng.Int63n(int64(4*Week))), time.Duration(rng.Int63n(int64(Day))))
	}
	enc := m.Encode()
	if len(enc) != EncodedModelSize {
		t.Fatalf("encoded size = %d, want %d", len(enc), EncodedModelSize)
	}
	got, err := DecodeModel(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Distributions are used as ratios; classification must survive the
	// round trip, and so must the probability estimates (approximately).
	if got.Periodic() != m.Periodic() {
		t.Error("periodicity flipped across encode/decode")
	}
	now := 10 * Day
	for dt := time.Minute; dt < 2*Day; dt *= 4 {
		a := m.ProbUpBy(now, now-time.Hour, now+dt)
		b := got.ProbUpBy(now, now-time.Hour, now+dt)
		if diff := a - b; diff > 0.05 || diff < -0.05 {
			t.Errorf("prediction drift after round trip at %v: %v vs %v", dt, a, b)
		}
	}
}

func TestModelEncodeSaturation(t *testing.T) {
	m := &Model{}
	for i := 0; i < 70000; i++ {
		m.upHour[8] = 65535 // direct saturation test
	}
	enc := m.Encode()
	if _, err := DecodeModel(enc); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeModelErrors(t *testing.T) {
	if _, err := DecodeModel(make([]byte, 10)); err == nil {
		t.Error("short buffer must fail")
	}
	bad := make([]byte, EncodedModelSize)
	if _, err := DecodeModel(bad); err == nil {
		t.Error("bad magic must fail")
	}
}

func TestLearnModel(t *testing.T) {
	// A clean 9-to-5 profile: model must learn the morning up events.
	p := &Profile{}
	for d := 0; d < 10; d++ {
		p.Up = append(p.Up, Interval{
			Start: time.Duration(d)*Day + 9*time.Hour,
			End:   time.Duration(d)*Day + 17*time.Hour,
		})
	}
	m := LearnModel(p, 10*Day)
	if !m.Periodic() {
		t.Error("9-to-5 machine must classify periodic")
	}
	if m.Observations() != 9 {
		t.Errorf("observations = %d, want 9 (first interval has no prior down)", m.Observations())
	}
	// Learning with a cutoff sees fewer transitions.
	m2 := LearnModel(p, 5*Day)
	if m2.Observations() >= m.Observations() {
		t.Error("cutoff must reduce observations")
	}
}

func TestDownBuckets(t *testing.T) {
	if downBucketOf(10*time.Second) != 0 {
		t.Error("tiny duration must land in bucket 0")
	}
	if downBucketOf(1000*Day) != NumDownBuckets-1 {
		t.Error("huge duration must land in last bucket")
	}
	// Buckets are ordered.
	prev := -1
	for d := time.Minute; d < 365*Day; d *= 2 {
		b := downBucketOf(d)
		if b < prev {
			t.Fatalf("bucket not monotone at %v", d)
		}
		prev = b
	}
}
