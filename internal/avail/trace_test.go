package avail

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeHelpers(t *testing.T) {
	if HourOfDay(0) != 0 || HourOfDay(90*time.Minute) != 1 {
		t.Error("HourOfDay wrong")
	}
	if HourOfDay(25*time.Hour) != 1 {
		t.Error("HourOfDay must wrap at midnight")
	}
	if DayOfWeek(0) != 0 { // epoch is Monday
		t.Error("epoch must be Monday")
	}
	if DayOfWeek(5*Day) != 5 || !IsWeekend(5*Day+3*time.Hour) {
		t.Error("Saturday detection wrong")
	}
	if IsWeekend(4 * Day) {
		t.Error("Friday is not a weekend")
	}
	if DayOfWeek(7*Day) != 0 {
		t.Error("DayOfWeek must wrap weekly")
	}
}

func TestProfileNormalize(t *testing.T) {
	p := &Profile{Up: []Interval{
		{10 * time.Hour, 12 * time.Hour},
		{1 * time.Hour, 3 * time.Hour},
		{2 * time.Hour, 5 * time.Hour}, // overlaps previous
		{5 * time.Hour, 6 * time.Hour}, // adjacent: merges
	}}
	p.Normalize()
	want := []Interval{{1 * time.Hour, 6 * time.Hour}, {10 * time.Hour, 12 * time.Hour}}
	if len(p.Up) != 2 || p.Up[0] != want[0] || p.Up[1] != want[1] {
		t.Fatalf("normalized = %v", p.Up)
	}
}

func testProfile() *Profile {
	return &Profile{Up: []Interval{
		{1 * time.Hour, 3 * time.Hour},
		{5 * time.Hour, 8 * time.Hour},
	}}
}

func TestAvailableAt(t *testing.T) {
	p := testProfile()
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{1 * time.Hour, true},
		{2 * time.Hour, true},
		{3 * time.Hour, false}, // half-open
		{4 * time.Hour, false},
		{5 * time.Hour, true},
		{8 * time.Hour, false},
		{100 * time.Hour, false},
	}
	for _, c := range cases {
		if got := p.AvailableAt(c.at); got != c.want {
			t.Errorf("AvailableAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNextUp(t *testing.T) {
	p := testProfile()
	if got, ok := p.NextUp(0); !ok || got != 1*time.Hour {
		t.Errorf("NextUp(0) = %v %v", got, ok)
	}
	if got, ok := p.NextUp(2 * time.Hour); !ok || got != 2*time.Hour {
		t.Errorf("NextUp while up = %v %v, want identity", got, ok)
	}
	if got, ok := p.NextUp(4 * time.Hour); !ok || got != 5*time.Hour {
		t.Errorf("NextUp(4h) = %v %v", got, ok)
	}
	if _, ok := p.NextUp(9 * time.Hour); ok {
		t.Error("NextUp after last interval must report false")
	}
}

func TestUpTimeIn(t *testing.T) {
	p := testProfile()
	if got := p.UpTimeIn(0, 10*time.Hour); got != 5*time.Hour {
		t.Errorf("full uptime = %v, want 5h", got)
	}
	if got := p.UpTimeIn(2*time.Hour, 6*time.Hour); got != 2*time.Hour {
		t.Errorf("partial uptime = %v, want 2h", got)
	}
	if got := p.UpTimeIn(3*time.Hour, 5*time.Hour); got != 0 {
		t.Errorf("gap uptime = %v, want 0", got)
	}
}

func TestAvailableThroughout(t *testing.T) {
	p := testProfile()
	if !p.AvailableThroughout(1*time.Hour, 3*time.Hour) {
		t.Error("should be available throughout its own interval")
	}
	if p.AvailableThroughout(2*time.Hour, 6*time.Hour) {
		t.Error("gap inside range must report false")
	}
	if !p.AvailableThroughout(6*time.Hour, 7*time.Hour) {
		t.Error("sub-interval must report true")
	}
}

func TestTransitions(t *testing.T) {
	p := testProfile()
	tr := p.Transitions(0, 10*time.Hour)
	want := []Transition{
		{1 * time.Hour, true}, {3 * time.Hour, false},
		{5 * time.Hour, true}, {8 * time.Hour, false},
	}
	if len(tr) != len(want) {
		t.Fatalf("transitions = %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("transitions[%d] = %v, want %v", i, tr[i], want[i])
		}
	}
	// Clipped window starting mid-interval: no initial up transition.
	tr = p.Transitions(2*time.Hour, 6*time.Hour)
	if len(tr) != 2 || tr[0] != (Transition{3 * time.Hour, false}) || tr[1] != (Transition{5 * time.Hour, true}) {
		t.Fatalf("clipped transitions = %v", tr)
	}
}

func TestTraceFractionAvailable(t *testing.T) {
	tr := &Trace{
		Horizon: 10 * time.Hour,
		Profiles: []*Profile{
			{Up: []Interval{{0, 10 * time.Hour}}},
			{Up: []Interval{{0, 5 * time.Hour}}},
		},
	}
	if got := tr.FractionAvailable(2 * time.Hour); got != 1.0 {
		t.Errorf("at 2h: %v", got)
	}
	if got := tr.FractionAvailable(7 * time.Hour); got != 0.5 {
		t.Errorf("at 7h: %v", got)
	}
	series := tr.HourlySeries()
	if len(series) != 10 {
		t.Fatalf("series length = %d", len(series))
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{
		Horizon: 10 * time.Hour,
		Profiles: []*Profile{
			{Up: []Interval{{0, 10 * time.Hour}}},            // always on: no churn
			{Up: []Interval{{2 * time.Hour, 7 * time.Hour}}}, // one join, one departure
		},
	}
	st := tr.ComputeStats()
	if st.MeanAvailability != 0.75 {
		t.Errorf("MeanAvailability = %v, want 0.75", st.MeanAvailability)
	}
	// 1 departure over 15 online endsystem-hours.
	wantDep := 1.0 / (15 * 3600)
	if diff := st.DeparturesPerOnlineSecond - wantDep; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("DeparturesPerOnlineSecond = %v, want %v", st.DeparturesPerOnlineSecond, wantDep)
	}
	// 1 join + 1 departure over 2 endsystems x 10 hours.
	wantChurn := 2.0 / (2 * 10 * 3600)
	if diff := st.ChurnPerEndsystemSecond - wantChurn; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ChurnPerEndsystemSecond = %v, want %v", st.ChurnPerEndsystemSecond, wantChurn)
	}
}

func TestProfileInvariantAfterNormalize(t *testing.T) {
	f := func(raw []uint32) bool {
		p := &Profile{}
		for i := 0; i+1 < len(raw); i += 2 {
			a := time.Duration(raw[i]%1000) * time.Minute
			b := a + time.Duration(raw[i+1]%500)*time.Minute
			p.Up = append(p.Up, Interval{a, b})
		}
		p.Normalize()
		for i := range p.Up {
			if p.Up[i].End < p.Up[i].Start {
				return false
			}
			if i > 0 && p.Up[i].Start <= p.Up[i-1].End {
				return false // must be strictly separated
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
