package avail

import (
	"math/rand"
	"time"
)

// GnutellaConfig parameterizes the synthetic high-churn availability
// generator, calibrated to the Gnutella activity traces used by the paper
// for its high-churn experiment: 7,602 endsystems over 60 hours with an
// average departure rate of 9.46e-5 departures per online endsystem per
// second (mean session a bit under three hours).
type GnutellaConfig struct {
	NumEndsystems int
	Horizon       time.Duration
	Seed          int64
	// MeanSession is the mean up-interval length. The departure rate per
	// online endsystem second is 1/MeanSession.
	MeanSession time.Duration
	// MeanDowntime is the mean down-interval length; together with
	// MeanSession it sets the mean availability
	// MeanSession/(MeanSession+MeanDowntime).
	MeanDowntime time.Duration
}

// DefaultGnutellaConfig returns defaults matching the paper's high-churn
// trace: mean session 10,570 s (departure rate 9.46e-5 s^-1) and mean
// availability around 0.3, typical of peer-to-peer hosts.
func DefaultGnutellaConfig(numEndsystems int, horizon time.Duration, seed int64) GnutellaConfig {
	return GnutellaConfig{
		NumEndsystems: numEndsystems,
		Horizon:       horizon,
		Seed:          seed,
		MeanSession:   10570 * time.Second,
		MeanDowntime:  24660 * time.Second,
	}
}

// GenerateGnutella builds a synthetic peer-to-peer availability trace with
// alternating exponentially distributed sessions and downtimes. Each
// endsystem starts in a random phase of its cycle so the population is
// stationary from t=0.
func GenerateGnutella(cfg GnutellaConfig) *Trace {
	tr := &Trace{Horizon: cfg.Horizon, Profiles: make([]*Profile, cfg.NumEndsystems)}
	pUp := float64(cfg.MeanSession) / float64(cfg.MeanSession+cfg.MeanDowntime)
	for i := range tr.Profiles {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e3779b97f4a7c ^ 0x6e47e11a))
		p := &Profile{}
		cursor := time.Duration(0)
		// Random initial phase: by the memorylessness of the exponential,
		// starting up with probability pUp and drawing fresh interval
		// lengths yields a stationary process.
		up := rng.Float64() < pUp
		for cursor < cfg.Horizon {
			if up {
				end := cursor + expDuration(rng, cfg.MeanSession)
				if end > cfg.Horizon {
					end = cfg.Horizon
				}
				p.Up = append(p.Up, Interval{Start: cursor, End: end})
				cursor = end
			} else {
				cursor += expDuration(rng, cfg.MeanDowntime)
			}
			up = !up
		}
		p.Normalize()
		tr.Profiles[i] = p
	}
	return tr
}
