package avail

import (
	"math"
	"testing"
	"time"
)

// The generators are calibrated against the published statistics of the
// traces the paper uses. These tests pin the calibration.

func TestFarsiteCalibration(t *testing.T) {
	tr := GenerateFarsite(DefaultFarsiteConfig(3000, 4*Week, 1))
	st := tr.ComputeStats()
	if st.MeanAvailability < 0.76 || st.MeanAvailability > 0.86 {
		t.Errorf("mean availability = %.3f, want ≈0.81", st.MeanAvailability)
	}
	// Paper: 4.06e-6 departures per online endsystem-second.
	if st.DeparturesPerOnlineSecond < 1.5e-6 || st.DeparturesPerOnlineSecond > 9e-6 {
		t.Errorf("departure rate = %.3g, want ≈4.06e-6", st.DeparturesPerOnlineSecond)
	}
	// Model parameter c ≈ 6.9e-6 (joins + leaves per endsystem-second).
	if st.ChurnPerEndsystemSecond < 2e-6 || st.ChurnPerEndsystemSecond > 1.5e-5 {
		t.Errorf("churn = %.3g, want ≈6.9e-6", st.ChurnPerEndsystemSecond)
	}
}

func TestFarsiteDiurnalPattern(t *testing.T) {
	tr := GenerateFarsite(DefaultFarsiteConfig(2000, 2*Week, 2))
	// Availability mid-Tuesday should clearly exceed availability at 4am.
	day := 8 * Day // second Tuesday
	night := tr.FractionAvailable(day + 4*time.Hour)
	noon := tr.FractionAvailable(day + 12*time.Hour)
	if noon-night < 0.1 {
		t.Errorf("diurnal swing too small: night=%.3f noon=%.3f", night, noon)
	}
	// Weekend availability below weekday availability.
	weekend := tr.FractionAvailable(12*Day + 12*time.Hour) // Saturday noon
	if noon-weekend < 0.05 {
		t.Errorf("weekly swing too small: weekday=%.3f weekend=%.3f", noon, weekend)
	}
}

func TestFarsiteDeterministicAndScaleFree(t *testing.T) {
	a := GenerateFarsite(DefaultFarsiteConfig(100, Week, 7))
	b := GenerateFarsite(DefaultFarsiteConfig(200, Week, 7))
	// Endsystem i's profile must not depend on the population size.
	for i := 0; i < 100; i++ {
		pa, pb := a.Profiles[i], b.Profiles[i]
		if len(pa.Up) != len(pb.Up) {
			t.Fatalf("endsystem %d differs between population sizes", i)
		}
		for j := range pa.Up {
			if pa.Up[j] != pb.Up[j] {
				t.Fatalf("endsystem %d interval %d differs", i, j)
			}
		}
	}
}

func TestFarsiteIntervalsWithinHorizon(t *testing.T) {
	tr := GenerateFarsite(DefaultFarsiteConfig(500, Week, 3))
	for i, p := range tr.Profiles {
		for _, iv := range p.Up {
			if iv.Start < 0 || iv.End > tr.Horizon || iv.End < iv.Start {
				t.Fatalf("endsystem %d has invalid interval %v", i, iv)
			}
		}
	}
}

func TestGnutellaCalibration(t *testing.T) {
	cfg := DefaultGnutellaConfig(3000, 60*time.Hour, 4)
	tr := GenerateGnutella(cfg)
	st := tr.ComputeStats()
	// Paper: 9.46e-5 departures per online endsystem-second.
	if st.DeparturesPerOnlineSecond < 6e-5 || st.DeparturesPerOnlineSecond > 1.4e-4 {
		t.Errorf("departure rate = %.3g, want ≈9.46e-5", st.DeparturesPerOnlineSecond)
	}
	wantAvail := float64(cfg.MeanSession) / float64(cfg.MeanSession+cfg.MeanDowntime)
	if math.Abs(st.MeanAvailability-wantAvail) > 0.08 {
		t.Errorf("mean availability = %.3f, want ≈%.3f", st.MeanAvailability, wantAvail)
	}
}

func TestComputeStatsNoOverflowAtScale(t *testing.T) {
	// Regression: summing uptime as time.Duration overflows int64
	// nanoseconds around 5,000 endsystem-months; stats must accumulate in
	// float seconds.
	tr := GenerateFarsite(DefaultFarsiteConfig(8000, 4*Week, 1))
	st := tr.ComputeStats()
	if st.MeanAvailability < 0.5 || st.MeanAvailability > 1 {
		t.Fatalf("mean availability %v out of range: accumulator overflow?", st.MeanAvailability)
	}
	if st.MeanSession <= 0 {
		t.Fatalf("mean session %v non-positive", st.MeanSession)
	}
}

func TestGnutellaMuchHigherChurnThanFarsite(t *testing.T) {
	f := GenerateFarsite(DefaultFarsiteConfig(1000, Week, 5)).ComputeStats()
	g := GenerateGnutella(DefaultGnutellaConfig(1000, Week, 5)).ComputeStats()
	if g.DeparturesPerOnlineSecond < 10*f.DeparturesPerOnlineSecond {
		t.Errorf("Gnutella churn (%.3g) should dwarf Farsite churn (%.3g)",
			g.DeparturesPerOnlineSecond, f.DeparturesPerOnlineSecond)
	}
}
