package avail

import (
	"fmt"
	"math"
	"time"
)

// NumDownBuckets is the number of logarithmic down-duration buckets in a
// Model. Bucket i covers down durations [30s·2^i, 30s·2^(i+1)), so 20
// buckets span 30 seconds to about a year.
const NumDownBuckets = 20

// EncodedModelSize is the wire size of a serialized Model in bytes: 24
// up-event hour counters, 20 down-duration counters, and a 4-byte header.
// This is the paper's model parameter a = 48 bytes.
const EncodedModelSize = 24 + NumDownBuckets + 4

// downBucketFloor returns the lower bound of down-duration bucket i.
func downBucketFloor(i int) time.Duration {
	return 30 * time.Second << uint(i)
}

// downBucketOf returns the bucket index for a down duration.
func downBucketOf(d time.Duration) int {
	if d < 30*time.Second {
		return 0
	}
	i := int(math.Log2(float64(d) / float64(30*time.Second)))
	if i < 0 {
		i = 0
	}
	if i >= NumDownBuckets {
		i = NumDownBuckets - 1
	}
	return i
}

// downBucketMid returns a representative duration for bucket i (its
// geometric midpoint).
func downBucketMid(i int) time.Duration {
	lo := float64(downBucketFloor(i))
	return time.Duration(lo * math.Sqrt2)
}

// Model is the per-endsystem availability model of Seaweed §3.2.1. Two
// distributions are maintained: the down-duration distribution (how long
// the endsystem stays unavailable) and the up-event distribution (the hour
// of day at which it comes back up). An endsystem whose up events are
// heavily concentrated in particular hours — peak-to-mean ratio of the
// up-event distribution exceeding 2 — is classified as periodic and
// predicted from the up-event distribution; otherwise the down-duration
// distribution is used, conditioned on the time already spent down.
//
// The model is updated locally whenever the endsystem becomes available and
// is then pushed to its replica set; its serialized form is 48 bytes.
type Model struct {
	upHour  [24]uint16
	downDur [NumDownBuckets]uint16
}

// PeriodicThreshold is the peak-to-mean ratio of the up-event distribution
// above which an endsystem classifies itself as periodic.
const PeriodicThreshold = 2.0

// ObserveUpEvent records that the endsystem became available at virtual
// time at, after having been down for downFor. Call it on every
// down-to-up transition.
func (m *Model) ObserveUpEvent(at, downFor time.Duration) {
	h := HourOfDay(at)
	if m.upHour[h] < math.MaxUint16 {
		m.upHour[h]++
	}
	b := downBucketOf(downFor)
	if m.downDur[b] < math.MaxUint16 {
		m.downDur[b]++
	}
}

// Observations returns the number of up events recorded.
func (m *Model) Observations() int {
	n := 0
	for _, c := range m.upHour {
		n += int(c)
	}
	return n
}

// Periodic reports whether the endsystem classifies as periodic: the
// peak-to-mean ratio of its up-event hour distribution exceeds 2.
func (m *Model) Periodic() bool {
	total := 0
	peak := 0
	for _, c := range m.upHour {
		total += int(c)
		if int(c) > peak {
			peak = int(c)
		}
	}
	if total == 0 {
		return false
	}
	mean := float64(total) / 24
	return float64(peak)/mean > PeriodicThreshold
}

// PredictionMode selects which distribution drives availability
// prediction. ModeAuto is the paper's design: the up-event (hour of day)
// distribution for endsystems classified periodic, the down-duration
// distribution otherwise. The forced modes exist for the ablation
// benchmarks that quantify the value of the classifier.
type PredictionMode int

const (
	// ModeAuto applies the peak-to-mean classifier (the paper's design).
	ModeAuto PredictionMode = iota
	// ModePeriodic always predicts from the up-event distribution.
	ModePeriodic
	// ModeDuration always predicts from the conditional down-duration
	// distribution.
	ModeDuration
)

// ProbUpBy returns the model's estimate of the probability that an
// endsystem — down since downSince, observed from the current virtual time
// now — will have become available at least once by target. It is
// monotonically non-decreasing in target. With no observations it falls
// back to a pessimistic exponential with a 12-hour mean downtime.
func (m *Model) ProbUpBy(now, downSince, target time.Duration) float64 {
	return m.ProbUpByMode(ModeAuto, now, downSince, target)
}

// ProbUpByMode is ProbUpBy under a forced prediction mode.
func (m *Model) ProbUpByMode(mode PredictionMode, now, downSince, target time.Duration) float64 {
	if target <= now {
		return 0
	}
	if m.Observations() == 0 {
		// Uninformed prior: exponential residual downtime, 12 h mean.
		dt := (target - now).Hours()
		return 1 - math.Exp(-dt/12)
	}
	periodic := m.Periodic()
	switch mode {
	case ModePeriodic:
		periodic = true
	case ModeDuration:
		periodic = false
	}
	if periodic {
		return m.probUpByPeriodic(now, target)
	}
	return m.probUpByDuration(now, downSince, target)
}

// probUpByPeriodic sums the up-event probabilities of the hours of day
// whose next occurrence after now falls within (now, target].
func (m *Model) probUpByPeriodic(now, target time.Duration) float64 {
	if target-now >= Day {
		return 1
	}
	total := 0
	for _, c := range m.upHour {
		total += int(c)
	}
	var p float64
	for h := 0; h < 24; h++ {
		if m.upHour[h] == 0 {
			continue
		}
		// Next time hour h begins, strictly after now's current instant.
		dayStart := now - now%Day
		occ := dayStart + time.Duration(h)*time.Hour
		// Use the middle of the hour as the representative up instant.
		occ += 30 * time.Minute
		for occ <= now {
			occ += Day
		}
		if occ <= target {
			p += float64(m.upHour[h]) / float64(total)
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// probUpByDuration conditions the down-duration distribution on the time
// already spent down: P(D <= elapsed+dt | D > elapsed). One pseudo-count in
// the top bucket keeps a residual tail so the conditional never divides by
// zero when the observed downtime exceeds everything in the history.
func (m *Model) probUpByDuration(now, downSince, target time.Duration) float64 {
	elapsed := now - downSince
	if elapsed < 0 {
		elapsed = 0
	}
	horizon := target - downSince

	var below, total float64
	for i := 0; i < NumDownBuckets; i++ {
		w := float64(m.downDur[i])
		if i == NumDownBuckets-1 {
			w++ // smoothing tail
		}
		total += w
		mid := downBucketMid(i)
		if mid <= elapsed {
			continue // already ruled out: we know D > elapsed
		}
		if mid <= horizon {
			below += w
		}
	}
	var above float64
	for i := 0; i < NumDownBuckets; i++ {
		w := float64(m.downDur[i])
		if i == NumDownBuckets-1 {
			w++
		}
		if downBucketMid(i) > elapsed {
			above += w
		}
	}
	if above == 0 {
		return 1
	}
	return below / above
}

// Encode serializes the model into its 48-byte wire form. Counters are
// range-compressed to a byte (values above 255 saturate), which is
// faithful to the paper's 48-byte availability models and loses no
// precision that matters: the distributions are used as ratios.
func (m *Model) Encode() []byte {
	out := make([]byte, EncodedModelSize)
	out[0] = 'A' // magic
	out[1] = 1   // version
	scale := 1
	scaleLog := 0
	maxC := 0
	for _, c := range m.upHour {
		if int(c) > maxC {
			maxC = int(c)
		}
	}
	for _, c := range m.downDur {
		if int(c) > maxC {
			maxC = int(c)
		}
	}
	for maxC/scale > 255 {
		scale *= 2
		scaleLog++
	}
	out[2] = byte(scaleLog)
	for i, c := range m.upHour {
		out[4+i] = byte(int(c) / scale)
	}
	for i, c := range m.downDur {
		out[4+24+i] = byte(int(c) / scale)
	}
	return out
}

// DecodeModel parses a model from its wire form.
func DecodeModel(b []byte) (*Model, error) {
	if len(b) != EncodedModelSize {
		return nil, fmt.Errorf("avail: model wire size %d, want %d", len(b), EncodedModelSize)
	}
	if b[0] != 'A' || b[1] != 1 {
		return nil, fmt.Errorf("avail: bad model header %x %x", b[0], b[1])
	}
	scale := 1 << int(b[2])
	m := &Model{}
	for i := range m.upHour {
		m.upHour[i] = uint16(int(b[4+i]) * scale)
	}
	for i := range m.downDur {
		m.downDur[i] = uint16(int(b[4+24+i]) * scale)
	}
	return m, nil
}

// LearnModel builds an availability model from every down-to-up transition
// in the profile before time upto. This mirrors the warmup phase of the
// paper's simulations, which let each endsystem learn its model before
// queries are injected.
func LearnModel(p *Profile, upto time.Duration) *Model {
	m := &Model{}
	for i := 1; i < len(p.Up); i++ {
		upAt := p.Up[i].Start
		if upAt >= upto {
			break
		}
		downFor := upAt - p.Up[i-1].End
		m.ObserveUpEvent(upAt, downFor)
	}
	return m
}
