package avail

import (
	"math/rand"
	"time"
)

// FarsiteConfig parameterizes the synthetic enterprise-desktop availability
// generator. The generator is calibrated so the aggregate statistics match
// those of the Farsite availability study used throughout the Seaweed paper
// (51,663 endsystems on the Microsoft corporate network, July/August 1999):
// mean availability around 0.81, a strong diurnal and weekly pattern with a
// sharp morning up-event peak, and a mean departure rate near 4.06e-6 per
// online endsystem per second.
type FarsiteConfig struct {
	NumEndsystems int
	Horizon       time.Duration
	Seed          int64

	// AlwaysOnFraction is the fraction of endsystems that behave as
	// servers or always-on desktops: available except for rare outages.
	AlwaysOnFraction float64
	// ServerMTBF is the mean time between failures for always-on
	// endsystems.
	ServerMTBF time.Duration
	// ServerMeanOutage is the mean outage duration for always-on
	// endsystems.
	ServerMeanOutage time.Duration

	// Office endsystems follow a work-hours cycle. Each endsystem draws a
	// persistent personal arrival hour from
	// [OfficeArriveEarliest, OfficeArriveLatest] and a persistent workday
	// length around OfficeMeanWorkday.
	OfficeArriveEarliest time.Duration
	OfficeArriveLatest   time.Duration
	OfficeMeanWorkday    time.Duration
	// OfficeAbsentProb is the per-weekday probability the endsystem stays
	// off all day (owner absent).
	OfficeAbsentProb float64
	// OfficeOvernightProb is the probability a workday machine is left on
	// overnight.
	OfficeOvernightProb float64
	// OfficeWeekendProb is the per-weekend-day probability the machine is
	// used (a shorter session).
	OfficeWeekendProb float64
}

// DefaultFarsiteConfig returns the calibrated defaults described above for
// the given scale and seed. The paper's full trace has 51,663 endsystems
// over 4 weeks plus a ~2-week warmup; experiments often subsample.
func DefaultFarsiteConfig(numEndsystems int, horizon time.Duration, seed int64) FarsiteConfig {
	return FarsiteConfig{
		NumEndsystems:        numEndsystems,
		Horizon:              horizon,
		Seed:                 seed,
		AlwaysOnFraction:     0.68,
		ServerMTBF:           30 * Day,
		ServerMeanOutage:     3 * time.Hour,
		OfficeArriveEarliest: 7*time.Hour + 30*time.Minute,
		OfficeArriveLatest:   9*time.Hour + 30*time.Minute,
		OfficeMeanWorkday:    9*time.Hour + 30*time.Minute,
		OfficeAbsentProb:     0.05,
		OfficeOvernightProb:  0.25,
		OfficeWeekendProb:    0.20,
	}
}

// GenerateFarsite builds a synthetic enterprise availability trace. The
// same config (including seed) always yields the same trace.
func GenerateFarsite(cfg FarsiteConfig) *Trace {
	tr := &Trace{Horizon: cfg.Horizon, Profiles: make([]*Profile, cfg.NumEndsystems)}
	for i := range tr.Profiles {
		// Each endsystem gets its own deterministic stream so the trace
		// for endsystem i does not depend on how many others exist.
		sub := rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9e3779b97f4a7c ^ 0x5ea3eed))
		if sub.Float64() < cfg.AlwaysOnFraction {
			tr.Profiles[i] = generateServer(cfg, sub)
		} else {
			tr.Profiles[i] = generateOffice(cfg, sub)
		}
	}
	return tr
}

// generateServer produces an always-on profile with rare Poisson outages.
func generateServer(cfg FarsiteConfig, rng *rand.Rand) *Profile {
	p := &Profile{}
	cursor := time.Duration(0)
	for cursor < cfg.Horizon {
		// Up until the next failure.
		up := expDuration(rng, cfg.ServerMTBF)
		end := cursor + up
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		p.Up = append(p.Up, Interval{Start: cursor, End: end})
		cursor = end + expDuration(rng, cfg.ServerMeanOutage)
	}
	p.Normalize()
	return p
}

// generateOffice produces a diurnal work-hours profile.
func generateOffice(cfg FarsiteConfig, rng *rand.Rand) *Profile {
	p := &Profile{}
	// Persistent personal habits.
	arriveSpan := cfg.OfficeArriveLatest - cfg.OfficeArriveEarliest
	personalArrive := cfg.OfficeArriveEarliest + time.Duration(rng.Int63n(int64(arriveSpan)+1))
	personalWorkday := cfg.OfficeMeanWorkday + time.Duration((rng.Float64()-0.5)*2*float64(time.Hour))

	days := int(cfg.Horizon/Day) + 2
	for d := 0; d < days; d++ {
		dayStart := time.Duration(d) * Day
		weekend := IsWeekend(dayStart)
		if weekend {
			if rng.Float64() < cfg.OfficeWeekendProb {
				start := dayStart + 10*time.Hour + jitter(rng, time.Hour)
				end := start + 4*time.Hour + jitter(rng, 2*time.Hour)
				p.Up = append(p.Up, clip(Interval{start, end}, cfg.Horizon))
			}
			continue
		}
		if rng.Float64() < cfg.OfficeAbsentProb {
			continue
		}
		start := dayStart + personalArrive + jitter(rng, 20*time.Minute)
		end := start + personalWorkday + jitter(rng, 45*time.Minute)
		if rng.Float64() < cfg.OfficeOvernightProb {
			// Left on overnight: runs until switched off around the end of
			// the next day's session (adjacent intervals merge in
			// Normalize).
			end = dayStart + Day + personalArrive + personalWorkday + jitter(rng, 45*time.Minute)
		}
		p.Up = append(p.Up, clip(Interval{start, end}, cfg.Horizon))
	}
	p.Normalize()
	return p
}

func clip(iv Interval, horizon time.Duration) Interval {
	if iv.Start < 0 {
		iv.Start = 0
	}
	if iv.End > horizon {
		iv.End = horizon
	}
	if iv.End < iv.Start {
		iv.End = iv.Start
	}
	return iv
}

// jitter returns a symmetric random offset in (-scale, scale).
func jitter(rng *rand.Rand, scale time.Duration) time.Duration {
	return time.Duration((rng.Float64()*2 - 1) * float64(scale))
}

// expDuration draws an exponentially distributed duration with the given
// mean.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
