// Package avail models endsystem availability: trace representation,
// synthetic trace generators calibrated to the Farsite and Gnutella studies
// cited by the Seaweed paper, and the per-endsystem availability model
// (down-duration and up-event distributions) that Seaweed replicates as
// metadata and uses for completeness prediction.
//
// Time in this package is virtual simulation time (time.Duration since the
// start of the trace). The trace epoch is taken to be midnight at the start
// of a Monday, so hour-of-day and day-of-week helpers are pure arithmetic.
package avail

import (
	"sort"
	"time"
)

// Day and Week are convenience durations for trace arithmetic.
const (
	Day  = 24 * time.Hour
	Week = 7 * Day
)

// HourOfDay returns the hour of day (0–23) of a virtual time.
func HourOfDay(t time.Duration) int {
	return int((t % Day) / time.Hour)
}

// DayOfWeek returns the day of week of a virtual time, with 0 = Monday
// (the trace epoch is a Monday midnight).
func DayOfWeek(t time.Duration) int {
	return int((t % Week) / Day)
}

// IsWeekend reports whether the virtual time falls on Saturday or Sunday.
func IsWeekend(t time.Duration) bool { return DayOfWeek(t) >= 5 }

// Interval is a half-open span [Start, End) during which an endsystem is
// available.
type Interval struct {
	Start, End time.Duration
}

// Duration returns the length of the interval.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Profile is one endsystem's availability history: a sorted list of
// non-overlapping, non-adjacent up intervals.
type Profile struct {
	Up []Interval
}

// Normalize drops empty intervals, sorts the rest, and merges overlapping
// or adjacent ones. Generators call it once after construction.
func (p *Profile) Normalize() {
	nonEmpty := p.Up[:0]
	for _, iv := range p.Up {
		if iv.End > iv.Start {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	p.Up = nonEmpty
	if len(p.Up) == 0 {
		return
	}
	sort.Slice(p.Up, func(i, j int) bool { return p.Up[i].Start < p.Up[j].Start })
	out := p.Up[:1]
	for _, iv := range p.Up[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	p.Up = out
}

// AvailableAt reports whether the endsystem is available at time t.
func (p *Profile) AvailableAt(t time.Duration) bool {
	i := sort.Search(len(p.Up), func(i int) bool { return p.Up[i].End > t })
	return i < len(p.Up) && p.Up[i].Start <= t
}

// NextUp returns the earliest time >= t at which the endsystem is
// available. If the endsystem is available at t it returns t itself. The
// second result is false if the endsystem never comes up again within the
// profile.
func (p *Profile) NextUp(t time.Duration) (time.Duration, bool) {
	i := sort.Search(len(p.Up), func(i int) bool { return p.Up[i].End > t })
	if i >= len(p.Up) {
		return 0, false
	}
	if p.Up[i].Start <= t {
		return t, true
	}
	return p.Up[i].Start, true
}

// UpTimeIn returns the total available time within [from, to).
func (p *Profile) UpTimeIn(from, to time.Duration) time.Duration {
	var total time.Duration
	// Up is sorted and non-overlapping: binary-search to the first
	// interval that can overlap [from, to) and stop at the first one past
	// to. This runs once per endsystem per query injection.
	i := sort.Search(len(p.Up), func(i int) bool { return p.Up[i].End > from })
	for ; i < len(p.Up); i++ {
		iv := p.Up[i]
		if iv.Start >= to {
			break
		}
		s, e := iv.Start, iv.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// AvailableThroughout reports whether the endsystem is available at every
// instant of [from, to].
func (p *Profile) AvailableThroughout(from, to time.Duration) bool {
	i := sort.Search(len(p.Up), func(i int) bool { return p.Up[i].End > from })
	return i < len(p.Up) && p.Up[i].Start <= from && p.Up[i].End >= to
}

// Transition is one availability state change.
type Transition struct {
	At time.Duration
	Up bool // true = endsystem came up, false = went down
}

// Transitions returns the profile's state changes in time order, clipped to
// [from, to). An up interval straddling from yields no transition at from
// (the endsystem is already up).
func (p *Profile) Transitions(from, to time.Duration) []Transition {
	// Same bounded scan as UpTimeIn, pre-sizing for the worst case of two
	// transitions per overlapping interval so the result grows at most
	// once.
	lo := sort.Search(len(p.Up), func(i int) bool { return p.Up[i].End > from })
	hi := lo
	for hi < len(p.Up) && p.Up[hi].Start < to {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := make([]Transition, 0, 2*(hi-lo))
	for _, iv := range p.Up[lo:hi] {
		if iv.Start >= from {
			out = append(out, Transition{At: iv.Start, Up: true})
		}
		if iv.End < to {
			out = append(out, Transition{At: iv.End, Up: false})
		}
	}
	return out
}

// Trace is a set of per-endsystem availability profiles over a common
// horizon.
type Trace struct {
	Horizon  time.Duration
	Profiles []*Profile
}

// NumEndsystems returns the number of profiles in the trace.
func (tr *Trace) NumEndsystems() int { return len(tr.Profiles) }

// FractionAvailable returns the fraction of endsystems available at time t.
func (tr *Trace) FractionAvailable(t time.Duration) float64 {
	if len(tr.Profiles) == 0 {
		return 0
	}
	up := 0
	for _, p := range tr.Profiles {
		if p.AvailableAt(t) {
			up++
		}
	}
	return float64(up) / float64(len(tr.Profiles))
}

// HourlySeries samples FractionAvailable once per hour across the horizon,
// mirroring the hourly-ping methodology of the Farsite study. This
// regenerates the paper's Figure 1.
func (tr *Trace) HourlySeries() []float64 {
	hours := int(tr.Horizon / time.Hour)
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		out[h] = tr.FractionAvailable(time.Duration(h) * time.Hour)
	}
	return out
}

// Stats summarizes the aggregate availability characteristics of a trace.
type Stats struct {
	// MeanAvailability is the time-averaged fraction of available
	// endsystems (the paper's f_on; 0.81 for Farsite).
	MeanAvailability float64
	// DeparturesPerOnlineSecond is the mean rate of down-transitions per
	// online endsystem per second (4.06e-6 for Farsite, 9.46e-5 for the
	// Gnutella trace used in the paper).
	DeparturesPerOnlineSecond float64
	// ChurnPerEndsystemSecond is the rate at which a single endsystem
	// switches state (joins + leaves), the model parameter c.
	ChurnPerEndsystemSecond float64
	// MeanSession is the mean up-interval length.
	MeanSession time.Duration
}

// ComputeStats measures the trace's aggregate statistics over its horizon.
// Accumulation happens in float64 seconds: summing time.Durations across
// tens of thousands of endsystem-months overflows int64 nanoseconds.
func (tr *Trace) ComputeStats() Stats {
	var upSeconds float64
	var departures, joins int64
	var sessions int64
	var sessionSeconds float64
	for _, p := range tr.Profiles {
		upSeconds += p.UpTimeIn(0, tr.Horizon).Seconds()
		for _, iv := range p.Up {
			if iv.Start > 0 {
				joins++
			}
			if iv.End < tr.Horizon {
				departures++
			}
			sessions++
			sessionSeconds += iv.Duration().Seconds()
		}
	}
	n := float64(len(tr.Profiles))
	horizonSecs := tr.Horizon.Seconds()
	st := Stats{}
	if n == 0 || horizonSecs == 0 {
		return st
	}
	st.MeanAvailability = upSeconds / (n * horizonSecs)
	if upSeconds > 0 {
		st.DeparturesPerOnlineSecond = float64(departures) / upSeconds
	}
	st.ChurnPerEndsystemSecond = float64(departures+joins) / (n * horizonSecs)
	if sessions > 0 {
		st.MeanSession = time.Duration(sessionSeconds / float64(sessions) * float64(time.Second))
	}
	return st
}
