// BenchmarkClusterSteadyState is the event-engine throughput benchmark:
// a mid-size packet-level cluster (N=2000 endsystems, 6 hours of virtual
// time, a handful of live queries) driven to completion, reporting
// events/sec, ns/event and allocs/event. These are the numbers every
// engine-scaling PR is judged against; the current and pre-change
// (binary-heap, closure-based) measurements are persisted side by side in
// BENCH_cluster.json by `make cluster-bench`.
package seaweed

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

const (
	benchClusterN       = 2000
	benchClusterHorizon = 6 * time.Hour
)

// clusterBenchBaseline is the pre-change engine (binary-heap event queue,
// closure-per-message delivery, closure-chain Every) measured by this
// same benchmark at the commit before the timer-wheel rewrite, on the CI
// reference container. It is the denominator of the speedup acceptance
// gate and is recorded in BENCH_cluster.json next to each fresh run.
var clusterBenchBaseline = clusterBenchMetrics{
	Events:         1030463,
	EventsPerSec:   468818,
	NsPerEvent:     2133,
	AllocsPerEvent: 4.787,
}

type clusterBenchMetrics struct {
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type clusterBenchSummary struct {
	Label      string              `json:"label"`
	N          int                 `json:"endsystems"`
	HorizonNS  int64               `json:"horizon_ns"`
	Current    clusterBenchMetrics `json:"current"`
	Baseline   clusterBenchMetrics `json:"baseline_pre_wheel"`
	SpeedupX   float64             `json:"speedup_vs_baseline_x"`
	AllocDropX float64             `json:"alloc_reduction_vs_baseline_x"`
	NumCPU     int                 `json:"num_cpu"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
}

func BenchmarkClusterSteadyState(b *testing.B) {
	trace := FarsiteTrace(benchClusterN, benchClusterHorizon, 7)
	q := MustParseQuery("SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80")

	var events uint64
	var elapsed time.Duration
	var allocs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewCluster(trace, WithSeed(7), WithFlowsPerDay(50))
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.StartTimer()

		start := time.Now()
		// Steady state with live queries: one injection per virtual hour.
		for h := time.Hour; h < benchClusterHorizon; h += time.Hour {
			c.RunUntil(h)
			if ep, ok := FirstLive(c); ok {
				c.InjectQuery(ep, q)
			}
		}
		c.RunUntil(benchClusterHorizon)
		elapsed += time.Since(start)

		b.StopTimer()
		runtime.ReadMemStats(&after)
		allocs += after.Mallocs - before.Mallocs
		events += c.Sched.Executed()
		b.StartTimer()
	}
	b.StopTimer()

	cur := clusterBenchMetrics{Events: events / uint64(b.N)}
	if elapsed > 0 && events > 0 {
		cur.EventsPerSec = float64(events) / elapsed.Seconds()
		cur.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
		cur.AllocsPerEvent = float64(allocs) / float64(events)
	}
	b.ReportMetric(cur.EventsPerSec, "events/sec")
	b.ReportMetric(cur.NsPerEvent, "ns/event")
	b.ReportMetric(cur.AllocsPerEvent, "allocs/event")

	if err := writeClusterBench(cur); err != nil {
		b.Logf("BENCH_cluster.json not written: %v", err)
	}
}

// writeClusterBench persists the measurement (plus the pre-change
// baseline and the derived speedups) to BENCH_cluster.json.
func writeClusterBench(cur clusterBenchMetrics) error {
	sum := clusterBenchSummary{
		Label:      "cluster-steady-state",
		N:          benchClusterN,
		HorizonNS:  int64(benchClusterHorizon),
		Current:    cur,
		Baseline:   clusterBenchBaseline,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if sum.Baseline.EventsPerSec > 0 {
		sum.SpeedupX = cur.EventsPerSec / sum.Baseline.EventsPerSec
	}
	if cur.AllocsPerEvent > 0 {
		sum.AllocDropX = sum.Baseline.AllocsPerEvent / cur.AllocsPerEvent
	}
	return writeBenchEntry("cluster_steady_state", sum)
}

// writeBenchEntry read-modify-writes one named entry of BENCH_cluster.json,
// which holds one JSON object per benchmark (the serial N=2000 steady-state
// run and the sharded N=100k scaling run) so `make cluster-bench` and
// `make cluster-bench-sharded` can refresh their own numbers independently.
func writeBenchEntry(key string, entry any) error {
	entries := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_cluster.json"); err == nil {
		if json.Unmarshal(data, &entries) != nil || entries["label"] != nil {
			// Pre-multi-entry format: a single steady-state summary object.
			entries = map[string]json.RawMessage{}
			var legacy clusterBenchSummary
			if json.Unmarshal(data, &legacy) == nil && legacy.Label != "" {
				if raw, err := json.Marshal(legacy); err == nil {
					entries["cluster_steady_state"] = raw
				}
			}
		}
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	entries[key] = raw
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644)
}
