GO ?= go

.PHONY: all build vet test race bench runner-bench sweep-smoke obs-bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, and the full test suite under the
# race detector.
check: build vet race

bench: runner-bench
	$(GO) test -bench=. -benchmem -run=^$$ .

# runner-bench runs the Figures 5-8 completeness sweep through the
# parallel experiment engine and emits BENCH_runner.json (wall clock,
# busy time, and speedup vs serial execution).
runner-bench:
	$(GO) run ./cmd/seaweed-sim -sweep -parallel 0 -bench BENCH_runner.json > /dev/null

# sweep-smoke is the CI smoke test: a shrunken parallel sweep that
# exercises the engine, the sinks, and the bench summary end to end.
sweep-smoke:
	$(GO) run ./cmd/seaweed-sim -sweep -smoke -parallel 2 -bench BENCH_runner.json -out sweep-smoke

# obs-bench measures the cost of the default-on observability layer
# (must stay under 5%).
obs-bench:
	$(GO) test -bench=BenchmarkObsOverhead -benchtime=3x -run=^$$ .

clean:
	$(GO) clean ./...
