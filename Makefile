GO ?= go

.PHONY: all build vet test race bench obs-bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, and the full test suite under the
# race detector.
check: build vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# obs-bench measures the cost of the default-on observability layer
# (must stay under 5%).
obs-bench:
	$(GO) test -bench=BenchmarkObsOverhead -benchtime=3x -run=^$$ .

clean:
	$(GO) clean ./...
