GO ?= go

.PHONY: all build vet test race bench runner-bench cluster-bench cluster-bench-sharded shard-smoke bench-smoke relq-bench relq-smoke profile sweep-smoke chaos-smoke hedge-smoke hedge-bench coords-smoke coords-bench workload-smoke trace-smoke qserve-bench obs-bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, and the full test suite under the
# race detector.
check: build vet race

bench: runner-bench
	$(GO) test -bench=. -benchmem -run=^$$ .

# runner-bench runs the Figures 5-8 completeness sweep through the
# parallel experiment engine and emits BENCH_runner.json (wall clock,
# busy time, and speedup vs serial execution).
runner-bench:
	$(GO) run ./cmd/seaweed-sim -sweep -parallel 0 -bench BENCH_runner.json > /dev/null

# cluster-bench runs the event-engine throughput benchmark (N=2000
# endsystems, 6 hours of virtual time) and persists events/sec, ns/event
# and allocs/event — next to the pinned pre-timer-wheel baseline — in
# BENCH_cluster.json.
cluster-bench:
	$(GO) test -run '^$$' -bench BenchmarkClusterSteadyState -benchtime=3x -benchmem .

# cluster-bench-sharded runs the sharded-engine scaling benchmark: an
# N=100,000 cluster on the 8-worker region-sharded engine, once at
# GOMAXPROCS=1 and once at GOMAXPROCS=8 (identical event sequences —
# the benchmark fails if the counts diverge), and writes the
# "sharded_100k" entry of BENCH_cluster.json with the events/s ratio.
cluster-bench-sharded:
	$(GO) test -run '^$$' -bench BenchmarkClusterSharded100k -benchtime=1x -timeout 60m .

# shard-smoke is the CI scale gate for the sharded engine: an N=1,000,000
# cluster must construct and complete a short horizon in one process
# (compact routing rows, lazy table fill, per-endpoint stats off).
shard-smoke:
	SEAWEED_SHARD_SMOKE=1 $(GO) test -run TestShardedMillionSmoke -v -timeout 60m .

# bench-smoke is the CI benchmark gate: one iteration of the engine
# benchmark. It fails on build errors and panics, never on timing.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkClusterSteadyState -benchtime=1x -benchmem .

# relq-bench measures per-endsystem scan throughput: the vectorized
# block-pruned executor vs the pinned row-at-a-time oracle, on a
# zone-prunable time-window workload and an unprunable port-equality
# workload (262k rows). Writes rows/s, allocs/op and speedups to
# BENCH_relq.json. The benchmark fails if the two paths ever disagree.
relq-bench:
	$(GO) test -run '^$$' -bench BenchmarkRelqScan -benchtime=5x -benchmem .

# relq-smoke is the CI gate for the scan benchmark: one iteration, which
# still asserts vectorized/oracle agreement. Fails on build errors,
# panics and result divergence — never on timing.
relq-smoke:
	$(GO) test -run '^$$' -bench BenchmarkRelqScan -benchtime=1x -benchmem .

# profile captures CPU and heap profiles of the engine benchmark.
# Inspect with `go tool pprof cpu.pprof` (top, list, web). For profiling
# a specific experiment instead, see seaweed-sim's -cpuprofile,
# -memprofile and -profileruns flags.
profile:
	$(GO) test -run '^$$' -bench BenchmarkClusterSteadyState -benchtime=3x \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"

# sweep-smoke is the CI smoke test: a shrunken parallel sweep that
# exercises the engine, the sinks, and the bench summary end to end.
sweep-smoke:
	$(GO) run ./cmd/seaweed-sim -sweep -smoke -parallel 2 -bench BENCH_runner.json -out sweep-smoke

# chaos-smoke is the CI fault-injection gate: every built-in chaos
# scenario at smoke scale, each run judged by the always-on invariant
# checker (exit 1 on any violation). Reports land in chaos-<name>.json.
chaos-smoke:
	@for s in partition burstloss flap mixed straggler; do \
		echo "== chaos $$s =="; \
		$(GO) run ./cmd/seaweed-sim -chaos $$s -smoke -out chaos-$$s || exit 1; \
	done

# hedge-smoke is the CI gate for interior-vertex hedging: the paired-seed
# ablation study (hedged p99 completion must strictly beat `-ablate
# hedging` under the straggler scenario, at <= 10% extra messages, with
# identical final rows), plus one straggler chaos run with its invariant
# checker. Deterministic; reports land in chaos-straggler.json.
hedge-smoke:
	$(GO) test -run TestHedgeSmoke -v ./internal/experiments/
	$(GO) run ./cmd/seaweed-sim -chaos straggler -smoke -out chaos-straggler

# hedge-bench runs the full-scale paired-seed hedging study and writes
# the "hedged_aggregation" entry of BENCH_cluster.json (aggregation p99
# under straggler + burst loss, hedged vs ablated). Fails if the hedged
# tail stops strictly beating the ablation or overhead exceeds 10%.
hedge-bench:
	$(GO) test -run '^$$' -bench BenchmarkHedgedAggregation -benchtime=1x .

# coords-smoke is the CI gate for the network-coordinate subsystem: the
# paired ablation study (coords-biased trees must strictly beat the
# id-only baseline on fan-in edge p50 and query p50) plus the unit suite
# (Vivaldi convergence, ball-tree vs brute force, frozen scopes) and one
# end-to-end CLI run of the RTT-scoped query demo, which exits 1 itself
# if the scoped result diverges from the brute-force oracle.
coords-smoke:
	$(GO) test -run TestCoordsSmoke -v ./internal/experiments/
	$(GO) test -v ./internal/coords/
	$(GO) run ./cmd/seaweed-sim -coords -rtt-scope 50ms -smoke

# coords-bench runs the full-scale paired coordinate ablation and writes
# the "coords_fanin" entry of BENCH_cluster.json (fan-in edge p50 and
# query p50, Vivaldi-biased vs id-only trees). Fails if coords stops
# strictly beating the baseline on either metric.
coords-bench:
	$(GO) test -run '^$$' -bench BenchmarkCoordsFanin -benchtime=1x .

# workload-smoke is the CI query-service gate: the smoke sweep test
# (byte-determinism at 1 vs 8 engine workers, ablation teeth on
# interactive p99) plus one end-to-end CLI sweep, which exits 1 itself if
# a tooth fails. Report lands in workload-smoke.json.
workload-smoke:
	$(GO) test -run TestWorkloadSmoke -v ./internal/experiments/
	$(GO) run ./cmd/seaweed-sim -workload heavy -smoke -parallel 2 -out workload-smoke

# qserve-bench runs the full-scale query-service sweep (N=2000, the heavy
# mix pushed to 300 interactive queries/hour so hundreds of queries are
# open concurrently under ~1.8x overload) and writes BENCH_qserve.json:
# per-variant p50/p99 time-to-90%-completeness plus the ablation teeth
# verdicts. Exits 1 if an ablation fails to degrade interactive p99.
qserve-bench:
	$(GO) run ./cmd/seaweed-sim -workload heavy -qps 300 -parallel 0 -out BENCH_qserve

# trace-smoke is the CI causal-tracing gate: a small traced workload
# with spans on, whose per-query critical-path decompositions must sum
# exactly to the queries' end-to-end latencies (seaweed-trace -check
# exits 1 otherwise), plus the time-series sampler and the obs overhead
# benchmark as a build/panic smoke.
trace-smoke:
	$(GO) run ./cmd/seaweed-sim -workload spike -smoke -ablate priority \
		-trace trace-smoke.jsonl -timeseries trace-smoke-ts.jsonl -metrics-out trace-smoke-metrics.json
	$(GO) run ./cmd/seaweed-trace -breakdown trace-smoke.jsonl -check | tail -n 12
	$(GO) test -bench=BenchmarkObsOverhead -benchtime=1x -run=^$$ .

# obs-bench measures the cost of the default-on observability layer
# (must stay under 5%).
obs-bench:
	$(GO) test -bench=BenchmarkObsOverhead -benchtime=3x -run=^$$ .

clean:
	$(GO) clean ./...
