// BenchmarkRelqScan is the per-endsystem scan-throughput benchmark: one
// endsystem-sized Flow table driven through the vectorized block-pruned
// executor AND the pinned row-at-a-time oracle (the pre-change execution
// path, kept compiled as the differential reference), on two workloads —
// a selective time-window query whose blocks zone maps can prune, and an
// unclustered port-equality query where pruning cannot help and the
// selection-vector kernels carry the whole speedup. `make relq-bench`
// persists rows/s, ns/op, allocs/op and the speedups to BENCH_relq.json;
// `make relq-smoke` runs one iteration as a CI build/panic gate (timing
// is never asserted — shared runners are too noisy).
package seaweed

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/relq"
)

// benchRelqRows is one endsystem's table size: 2^18 rows = 128 blocks,
// about a month of Anemone flow capture at the paper's rates.
const benchRelqRows = 1 << 18

// buildRelqBenchTable generates a streaming-shaped Flow table: timestamps
// arrive in order (as the live feed inserts them), so ts-range queries are
// zone-prunable, while ports and sizes are unclustered. Returns the table
// and the final (maximum) timestamp so workloads can target the tail.
func buildRelqBenchTable() (*relq.Table, int64) {
	schema := relq.Schema{Name: "Flow", Columns: []relq.Column{
		{Name: "ts", Type: relq.TInt, Indexed: true},
		{Name: "SrcPort", Type: relq.TInt, Indexed: true},
		{Name: "LocalPort", Type: relq.TInt, Indexed: true},
		{Name: "App", Type: relq.TString, Indexed: true},
		{Name: "Bytes", Type: relq.TInt, Indexed: true},
	}}
	apps := []string{"HTTP", "HTTPS", "SMB", "SQL", "DNS", "P2P"}
	ports := []int64{80, 443, 445, 1433, 53, 6881}
	tbl := relq.NewTableWithCapacity(schema, benchRelqRows)
	rng := rand.New(rand.NewSource(99))
	ts := int64(1_000_000)
	for r := 0; r < benchRelqRows; r++ {
		ts += rng.Int63n(3) // in-order arrival, ~1 row/s
		a := rng.Intn(len(apps))
		src := ports[a]
		if rng.Intn(2) == 0 {
			src = 1024 + rng.Int63n(60000)
		}
		tbl.InsertInts(ts, src, 1024+rng.Int63n(60000),
			relq.HashString(apps[a]), 64+rng.Int63n(1<<20))
	}
	tbl.BuildSummary() // enables selectivity-ordered conjuncts
	return tbl, ts
}

type relqPathMetrics struct {
	RowsPerSec  float64 `json:"rows_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type relqWorkloadResult struct {
	SQL               string          `json:"sql"`
	MatchingRows      int64           `json:"matching_rows"`
	BlocksPrunedPerOp float64         `json:"blocks_pruned_per_op"`
	Vectorized        relqPathMetrics `json:"vectorized"`
	Oracle            relqPathMetrics `json:"oracle_row_at_a_time"`
	SpeedupX          float64         `json:"speedup_vs_oracle_x"`
	AllocDropX        float64         `json:"alloc_reduction_vs_oracle_x"`
}

type relqBenchSummary struct {
	Rows       int                           `json:"rows"`
	Blocks     int                           `json:"blocks"`
	Workloads  map[string]relqWorkloadResult `json:"workloads"`
	NumCPU     int                           `json:"num_cpu"`
	GOMAXPROCS int                           `json:"gomaxprocs"`
}

// measureScan times reps executions of run, returning elapsed time and the
// per-op heap allocation count.
func measureScan(reps int, run func()) (time.Duration, float64) {
	run() // warm pools and caches outside the timed region
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, float64(after.Mallocs-before.Mallocs) / float64(reps)
}

func BenchmarkRelqScan(b *testing.B) {
	tbl, maxTs := buildRelqBenchTable()
	o := obs.New()
	tbl.SetExecStats(relq.StandardExecStats(o))
	pruned := o.Counter("blocks_pruned")

	workloads := []struct {
		name string
		sql  string
	}{
		// Selective: the trailing ~1% of the capture window (timestamps
		// advance ~1/row, so maxTs-2600 keeps ~2600 rows); all but the last
		// block or two are zone-prunable.
		{"selective", fmt.Sprintf("SELECT SUM(Bytes) FROM Flow WHERE ts >= %d", maxTs-2600)},
		// Unpruned: equality on an unclustered column; every block scans.
		{"unpruned", "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"},
	}

	const reps = 30
	sum := relqBenchSummary{
		Rows:       tbl.NumRows(),
		Blocks:     tbl.NumBlocks(),
		Workloads:  make(map[string]relqWorkloadResult),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range workloads {
			plan, err := tbl.Bind(relq.MustParse(w.sql))
			if err != nil {
				b.Fatal(err)
			}
			// Correctness before speed: both paths must agree exactly.
			vec, oracle := plan.Execute(0), plan.ExecuteOracle(0)
			if vec != oracle {
				b.Fatalf("%s: vectorized %+v != oracle %+v", w.name, vec, oracle)
			}

			p0 := pruned.Value()
			vecTime, vecAllocs := measureScan(reps, func() { plan.Execute(0) })
			prunedPerOp := float64(pruned.Value()-p0) / float64(reps+1)
			oraTime, oraAllocs := measureScan(reps, func() { plan.ExecuteOracle(0) })

			rows := float64(tbl.NumRows())
			res := relqWorkloadResult{
				SQL:               w.sql,
				MatchingRows:      vec.Count,
				BlocksPrunedPerOp: prunedPerOp,
				Vectorized: relqPathMetrics{
					RowsPerSec:  rows * reps / vecTime.Seconds(),
					NsPerOp:     float64(vecTime.Nanoseconds()) / reps,
					AllocsPerOp: vecAllocs,
				},
				Oracle: relqPathMetrics{
					RowsPerSec:  rows * reps / oraTime.Seconds(),
					NsPerOp:     float64(oraTime.Nanoseconds()) / reps,
					AllocsPerOp: oraAllocs,
				},
			}
			if oraTime > 0 {
				res.SpeedupX = float64(oraTime) / float64(vecTime)
			}
			if vecAllocs > 0 {
				res.AllocDropX = oraAllocs / vecAllocs
			}
			sum.Workloads[w.name] = res
			b.ReportMetric(res.SpeedupX, w.name+"_speedup_x")
			b.ReportMetric(res.Vectorized.RowsPerSec/1e6, w.name+"_Mrows/s")
		}
	}
	b.StopTimer()
	if err := writeRelqBench(sum); err != nil {
		b.Logf("BENCH_relq.json not written: %v", err)
	}
}

func writeRelqBench(sum relqBenchSummary) error {
	entries := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_relq.json"); err == nil {
		_ = json.Unmarshal(data, &entries)
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	entries["relq_scan"] = raw
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_relq.json", append(data, '\n'), 0o644)
}
