// BenchmarkClusterSharded100k is the sharded-engine scaling benchmark: an
// N=100,000-endsystem packet-level cluster driven through a short horizon
// on the region-sharded engine, once at GOMAXPROCS=1 (the serial
// execution of the sharded window schedule) and once at GOMAXPROCS=8.
// Both runs execute the identical event sequence — the engine is
// byte-deterministic across worker counts — so the events/s ratio is a
// pure parallel-speedup measurement. `make cluster-bench-sharded`
// persists the result as the "sharded_100k" entry of BENCH_cluster.json.
//
// TestShardedMillionSmoke (env-gated, `make shard-smoke`) is the memory
// ceiling check: an N=1,000,000 cluster must construct and complete a
// short horizon in-process.
package seaweed

import (
	"os"
	"runtime"
	"testing"
	"time"
)

const (
	benchSharded100kN       = 100_000
	benchSharded100kHorizon = 30 * time.Minute
	benchShardedWorkers     = 8
)

type shardedBenchRun struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
}

type shardedBenchSummary struct {
	Label     string            `json:"label"`
	N         int               `json:"endsystems"`
	HorizonNS int64             `json:"horizon_ns"`
	Shards    int               `json:"shards"`
	NumCPU    int               `json:"num_cpu"`
	Runs      []shardedBenchRun `json:"runs"`
	// ScalingX is events/s at the highest GOMAXPROCS over events/s at
	// GOMAXPROCS=1. On a single-CPU host this measures scheduling overhead,
	// not parallelism — Note says so when that is the case.
	ScalingX float64 `json:"scaling_x_gomaxprocs_8_vs_1"`
	Note     string  `json:"note,omitempty"`
}

// runSharded100k builds the N=100k cluster and drives it to the bench
// horizon, returning the executed-event count and wall time.
func runSharded100k(b *testing.B, trace *AvailabilityTrace) (uint64, time.Duration) {
	b.Helper()
	c := New(WithTrace(trace), WithSeed(7), WithShards(benchShardedWorkers),
		WithFlowsPerDay(5), WithConfig(func(cfg *ClusterConfig) {
			cfg.Net.PerEndpointStats = false
			cfg.Pastry.LazyTables = true
		}))
	runtime.GC()
	start := time.Now()
	c.RunUntil(benchSharded100kHorizon)
	return c.Sched.Executed(), time.Since(start)
}

func BenchmarkClusterSharded100k(b *testing.B) {
	trace := FarsiteTrace(benchSharded100kN, time.Hour, 7)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sum := shardedBenchSummary{
		Label:     "sharded-100k-scaling",
		N:         benchSharded100kN,
		HorizonNS: int64(benchSharded100kHorizon),
		Shards:    benchShardedWorkers,
		NumCPU:    runtime.NumCPU(),
	}
	for i := 0; i < b.N; i++ {
		sum.Runs = sum.Runs[:0]
		for _, gmp := range []int{1, benchShardedWorkers} {
			runtime.GOMAXPROCS(gmp)
			events, wall := runSharded100k(b, trace)
			run := shardedBenchRun{GOMAXPROCS: gmp, Events: events, WallSeconds: wall.Seconds()}
			if wall > 0 {
				run.EventsPerSec = float64(events) / wall.Seconds()
			}
			sum.Runs = append(sum.Runs, run)
			b.Logf("gomaxprocs=%d: %d events in %v (%.0f events/s)", gmp, events, wall, run.EventsPerSec)
		}
		if sum.Runs[0].Events != sum.Runs[1].Events {
			b.Fatalf("event counts diverge across gomaxprocs: %d vs %d — determinism broken",
				sum.Runs[0].Events, sum.Runs[1].Events)
		}
	}
	if sum.Runs[0].EventsPerSec > 0 {
		sum.ScalingX = sum.Runs[len(sum.Runs)-1].EventsPerSec / sum.Runs[0].EventsPerSec
	}
	if sum.NumCPU < benchShardedWorkers {
		sum.Note = "host has fewer CPUs than workers; scaling_x measures engine overhead, not parallel speedup"
	}
	b.ReportMetric(sum.Runs[len(sum.Runs)-1].EventsPerSec, "events/sec")
	b.ReportMetric(sum.ScalingX, "scaling-x")
	if err := writeBenchEntry("sharded_100k", sum); err != nil {
		b.Logf("BENCH_cluster.json not written: %v", err)
	}
}

// TestShardedMillionSmoke is the N=10^6 memory-and-liveness smoke: the
// full cluster — trace, overlay, datasets, availability churn — must
// construct and run a short horizon on the sharded engine without
// exhausting memory. Env-gated because construction alone takes minutes;
// `make shard-smoke` (and the CI shard-smoke job) runs it.
func TestShardedMillionSmoke(t *testing.T) {
	if os.Getenv("SEAWEED_SHARD_SMOKE") == "" {
		t.Skip("set SEAWEED_SHARD_SMOKE=1 to run the N=1M smoke")
	}
	const n = 1_000_000
	trace := FarsiteTrace(n, time.Hour, 7)
	c := New(WithTrace(trace), WithSeed(7), WithShards(benchShardedWorkers),
		WithFlowsPerDay(2), WithConfig(func(cfg *ClusterConfig) {
			cfg.Net.PerEndpointStats = false
			cfg.Pastry.LazyTables = true
		}))
	if live := c.NumLive(); live < n/10 {
		t.Fatalf("only %d of %d endsystems live after bootstrap", live, n)
	}
	start := time.Now()
	c.RunUntil(5 * time.Minute)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("N=1M: %d events in %v, %d live, heap %.1f GiB",
		c.Sched.Executed(), time.Since(start), c.NumLive(), float64(ms.HeapAlloc)/(1<<30))
	if c.Sched.Executed() == 0 {
		t.Fatal("no events executed")
	}
}
